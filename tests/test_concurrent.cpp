// Concurrent stress tests common to every implementation: deterministic
// final states under parallel disjoint updates, contended same-key churn,
// wait-free visibility of untouched keys, and structural sanity of range
// query results under concurrent modification. All worker threads operate
// through per-thread TypedSessions (test_util's run_sessions).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "test_util.h"

namespace bref {
namespace {

constexpr int kThreads = 4;

template <typename DS>
class ConcurrentSet : public ::testing::Test {
 protected:
  DS ds;
  using Session = TypedSession<DS>;
};

TYPED_TEST_SUITE(ConcurrentSet, testutil::AllSetTypes);

TYPED_TEST(ConcurrentSet, DisjointParallelInserts) {
  constexpr KeyT kPerThread = 400;
  testutil::run_sessions<TypeParam>(this->ds, kThreads, [&](auto& s) {
    for (KeyT i = 0; i < kPerThread; ++i) {
      KeyT k = 1 + s.tid() + i * kThreads;
      ASSERT_TRUE(s.insert(k, k * 3));
    }
  });
  EXPECT_EQ(this->ds.size_slow(), size_t(kThreads) * kPerThread);
  EXPECT_TRUE(this->ds.check_invariants());
  typename TestFixture::Session s(this->ds, 0);
  EXPECT_EQ(s.get(1 + 1 + 5 * kThreads),
            std::optional<ValT>((1 + 1 + 5 * kThreads) * 3));
}

TYPED_TEST(ConcurrentSet, DisjointInsertThenRemoveHalf) {
  constexpr KeyT kPerThread = 300;
  testutil::run_sessions<TypeParam>(this->ds, kThreads, [&](auto& s) {
    for (KeyT i = 0; i < kPerThread; ++i) {
      KeyT k = 1 + s.tid() + i * kThreads;
      ASSERT_TRUE(s.insert(k, k));
    }
    for (KeyT i = 0; i < kPerThread; i += 2) {
      KeyT k = 1 + s.tid() + i * kThreads;
      ASSERT_TRUE(s.remove(k));
    }
  });
  EXPECT_EQ(this->ds.size_slow(), size_t(kThreads) * kPerThread / 2);
  EXPECT_TRUE(this->ds.check_invariants());
  // Odd-index keys survive, even-index keys are gone.
  typename TestFixture::Session s(this->ds, 0);
  for (int tid = 0; tid < kThreads; ++tid) {
    EXPECT_FALSE(s.contains(1 + tid + 0 * kThreads));
    EXPECT_TRUE(s.contains(1 + tid + 1 * kThreads));
  }
}

TYPED_TEST(ConcurrentSet, ContendedChurnKeepsStructureSane) {
  // All threads hammer the same small key space; afterwards the structure
  // must be internally consistent and agree with itself.
  constexpr KeyT kSpace = 32;
  testutil::run_sessions<TypeParam>(this->ds, kThreads, [&](auto& s) {
    Xoshiro256 rng(s.tid() * 77 + 1);
    for (int i = 0; i < 3000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  EXPECT_TRUE(this->ds.check_invariants());
  auto v = this->ds.to_vector();
  std::set<KeyT> seen;
  typename TestFixture::Session s(this->ds, 0);
  for (const auto& [k, val] : v) {
    EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
    EXPECT_TRUE(s.contains(k));
  }
  for (KeyT k = 1; k <= kSpace; ++k)
    EXPECT_EQ(s.contains(k), seen.count(k) > 0);
}

TYPED_TEST(ConcurrentSet, UntouchedKeysStayVisibleUnderChurn) {
  // Keys 1000/2000/3000 are never modified; churn happens around them.
  // Every lookup during the churn must succeed (wait-free contains path).
  {
    typename TestFixture::Session s(this->ds, 0);
    for (KeyT k : {1000, 2000, 3000}) ASSERT_TRUE(s.insert(k, k));
  }
  std::atomic<bool> stop{false};
  std::atomic<long> misses{0};
  std::thread checker([&] {
    typename TestFixture::Session s(this->ds, kThreads);
    while (!stop.load(std::memory_order_acquire)) {
      for (KeyT k : {1000, 2000, 3000})
        if (!s.contains(k)) misses.fetch_add(1);
    }
  });
  testutil::run_sessions<TypeParam>(this->ds, kThreads, [&](auto& s) {
    Xoshiro256 rng(s.tid() + 5);
    for (int i = 0; i < 4000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(4000));
      if (k % 1000 == 0) continue;  // leave sentinels alone
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  stop = true;
  checker.join();
  EXPECT_EQ(misses.load(), 0);
}

TYPED_TEST(ConcurrentSet, RangeQueriesSortedUniqueInRangeUnderChurn) {
  constexpr KeyT kSpace = 2000;
  {
    typename TestFixture::Session s(this->ds, 0);
    for (KeyT k = 1; k <= kSpace; k += 2) s.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<long> failures{0};
  std::thread rq_thread([&] {
    typename TestFixture::Session s(this->ds, kThreads);
    RangeSnapshot out;
    Xoshiro256 rng(42);
    while (!stop.load(std::memory_order_acquire)) {
      KeyT lo = 1 + static_cast<KeyT>(rng.next_range(kSpace - 100));
      KeyT hi = lo + 100;
      s.range_query(lo, hi, out);
      if constexpr (TypeParam::kLinearizableRq) {
        if (!testutil::sorted_in_range(out, lo, hi)) failures.fetch_add(1);
      } else {
        // Unsafe range queries make no snapshot guarantee: under churn they
        // may observe duplicates or misordered keys (e.g. Citrus successor
        // copies). Range containment is the only structural property left.
        for (const auto& [k, v] : out)
          if (k < lo || k > hi) failures.fetch_add(1);
      }
    }
  });
  testutil::run_sessions<TypeParam>(this->ds, kThreads, [&](auto& s) {
    Xoshiro256 rng(s.tid() * 3 + 1);
    for (int i = 0; i < 5000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (rng.next_range(2) == 0)
        s.insert(k, k);
      else
        s.remove(k);
    }
  });
  stop = true;
  rq_thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(this->ds.check_invariants());
}

TYPED_TEST(ConcurrentSet, MixedOpsBalanceBooksExactly) {
  // Each thread tracks its own net successful inserts minus removes over a
  // private stripe; the final size must equal the sum of the nets.
  std::atomic<long> net{0};
  testutil::run_sessions<TypeParam>(this->ds, kThreads, [&](auto& s) {
    Xoshiro256 rng(s.tid() + 21);
    long local = 0;
    for (int i = 0; i < 4000; ++i) {
      KeyT k = 1 + s.tid() + static_cast<KeyT>(rng.next_range(100)) * kThreads;
      if (rng.next_range(2) == 0) {
        if (s.insert(k, k)) ++local;
      } else {
        if (s.remove(k)) --local;
      }
    }
    net.fetch_add(local);
  });
  EXPECT_EQ(this->ds.size_slow(), static_cast<size_t>(net.load()));
  EXPECT_TRUE(this->ds.check_invariants());
}

// Reclamation-enabled churn for the structures that take a reclaim flag
// (the same constructor-shape dispatch the registry's factories use).
template <typename DS>
class ReclaimingSet : public ::testing::Test {};

using ReclaimFlagTypes =
    ::testing::Types<BundledList<KeyT, ValT>, BundledSkipList<KeyT, ValT>,
                     BundledCitrus<KeyT, ValT>, LazyListUnsafe<KeyT, ValT>,
                     LazySkipListUnsafe<KeyT, ValT>,
                     CitrusTreeUnsafe<KeyT, ValT>>;
TYPED_TEST_SUITE(ReclaimingSet, ReclaimFlagTypes);

template <typename DS>
DS make_reclaiming() {
  if constexpr (std::is_constructible_v<DS, uint64_t, bool>)
    return DS(1, /*reclaim=*/true);
  else
    return DS(/*reclaim=*/true);
}

TYPED_TEST(ReclaimingSet, ChurnWithEbrReclamationStaysCorrect) {
  TypeParam ds = make_reclaiming<TypeParam>();
  testutil::run_sessions<TypeParam>(ds, kThreads, [&](auto& s) {
    Xoshiro256 rng(s.tid() + 31);
    RangeSnapshot out;
    for (int i = 0; i < 3000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(256));
      switch (rng.next_range(4)) {
        case 0:
          s.insert(k, k);
          break;
        case 1:
          s.remove(k);
          break;
        case 2:
          s.contains(k);
          break;
        case 3:
          s.range_query(k, k + 32, out);
          break;
      }
    }
  });
  EXPECT_TRUE(ds.check_invariants());
  EXPECT_GT(ds.ebr().freed(), 0u);  // grace periods actually elapsed
}

}  // namespace
}  // namespace bref
