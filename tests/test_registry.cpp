// Registry, capability and facade tests.
//
// Pins down the redesigned public API layer:
//   * the self-registering ImplRegistry holds exactly the 18 builtin
//     configurations — the paper's 17 plus the LFCA tree — all
//     constructible, with metadata matching their descriptors (catching
//     drift like a registration slipping in unnamed or a builtin going
//     missing);
//   * SetOptions an implementation cannot honor throw
//     UnsupportedOptionError instead of being silently dropped — including
//     the regression observable pre-redesign, where constructing
//     "RLU-list" with {.reclaim = true} succeeded and leaked;
//   * one more implementation plugs in with one registration line
//     (ScopedRegistration over a toy wrapper) and no registry edits;
//   * ThreadSession RAII id management recycles dense ids;
//   * RangeSnapshot's reusable-buffer and timestamp contracts.

#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <set>
#include <string>
#include <vector>

#include "api/any_set.h"
#include "api/set.h"
#include "test_util.h"

namespace bref {
namespace {

// The 18 builtins: the paper's 17 configurations (5 techniques x 3
// structures, minus the never-built Snapcollector-citrus) plus the LFCA
// tree, which brings its own structure kind. A new *builtin* must be added
// here deliberately, not by accident.
const std::set<std::string> kBuiltinConfigs = {
    "Bundle-list",        "Bundle-skiplist",        "Bundle-citrus",
    "Unsafe-list",        "Unsafe-skiplist",        "Unsafe-citrus",
    "EBR-RQ-list",        "EBR-RQ-skiplist",        "EBR-RQ-citrus",
    "EBR-RQ-LF-list",     "EBR-RQ-LF-skiplist",     "EBR-RQ-LF-citrus",
    "RLU-list",           "RLU-skiplist",           "RLU-citrus",
    "Snapcollector-list", "Snapcollector-skiplist", "LFCA-tree"};

std::vector<ImplDescriptor> builtin_descriptors() {
  std::vector<ImplDescriptor> out;
  for (auto& d : ImplRegistry::instance().descriptors())
    if (d.builtin) out.push_back(d);
  return out;
}

// ---------------------------------------------------------------------------
// Registry inventory.
// ---------------------------------------------------------------------------

TEST(Registry, ContainsExactlyTheBuiltinConfigurations) {
  std::set<std::string> names;
  for (auto& d : builtin_descriptors()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate: " << d.name;
  }
  EXPECT_EQ(names, kBuiltinConfigs);
  EXPECT_EQ(builtin_descriptors().size(), 18u);
}

TEST(Registry, EveryDescriptorIsConstructibleAndSelfConsistent) {
  for (const auto& d : ImplRegistry::instance().descriptors()) {
    SCOPED_TRACE(d.name);
    auto ds = ImplRegistry::instance().create(d.name);
    ASSERT_NE(ds, nullptr);
    EXPECT_EQ(ds->technique(), d.technique);
    EXPECT_EQ(ds->structure(), d.structure);
    EXPECT_EQ(ds->name(), d.name);
    EXPECT_EQ(d.name, d.technique + "-" + d.structure);
    EXPECT_EQ(ds->linearizable_rq(), d.caps.linearizable_rq);
    // Freshly constructed: empty and structurally sane.
    EXPECT_EQ(ds->size_slow(), 0u);
    EXPECT_TRUE(ds->check_invariants());
    // And actually operational.
    EXPECT_TRUE(ds->insert(0, 1, 10));
    EXPECT_TRUE(ds->contains(0, 1));
  }
}

TEST(Registry, CapabilityMatrixMatchesTheTechniques) {
  for (const auto& d : builtin_descriptors()) {
    SCOPED_TRACE(d.name);
    const bool bundle = d.technique == "Bundle";
    const bool unsafe_ = d.technique == "Unsafe";
    const bool lfca = d.technique == "LFCA";
    const bool ebrrq =
        d.technique == "EBR-RQ" || d.technique == "EBR-RQ-LF";
    // Only the Unsafe baselines lack linearizable range queries.
    EXPECT_EQ(d.caps.linearizable_rq, !unsafe_);
    // Only bundled structures expose the Fig. 5 relaxation knob; snapshot
    // timestamps are reported by every technique that fixes one — Bundle
    // and, since the provider surfaced its per-query fetch-add, the six
    // EBR-RQ entries.
    EXPECT_EQ(d.caps.relaxation, bundle);
    EXPECT_EQ(d.caps.rq_timestamp, bundle || ebrrq);
    // Bundled, Unsafe and LFCA structures run on EBR and can reclaim; the
    // EBR-RQ/RLU/Snapcollector ports keep the paper's leaky benchmark mode.
    EXPECT_EQ(d.caps.reclamation, bundle || unsafe_ || lfca);
    // Only the bundled structures can take part in a coordinated
    // multi-instance range query (shareable clock + fixed-timestamp
    // collection); EBR-RQ reports timestamps but owns no shareable clock.
    EXPECT_EQ(d.caps.coordinated_rq, bundle);
  }
}

TEST(Registry, DerivedNameListsMatchDescriptors) {
  const auto names = any_set_names();
  EXPECT_EQ(names.size(), ImplRegistry::instance().size());
  // Linearizable subset is capability-derived (no name-prefix games).
  for (const auto& n : any_set_linearizable_names()) {
    ImplDescriptor d;
    ASSERT_TRUE(ImplRegistry::instance().find(n, &d));
    EXPECT_TRUE(d.caps.linearizable_rq);
  }
  EXPECT_EQ(any_set_linearizable_names().size(), names.size() - 3);
}

TEST(Registry, UnknownNamesThrow) {
  EXPECT_THROW((void)ImplRegistry::instance().create("Bundle-btree"),
               std::invalid_argument);
  EXPECT_THROW((void)Set::create(""), std::invalid_argument);
  EXPECT_FALSE(ImplRegistry::instance().find("Bundle-btree"));
}

// ---------------------------------------------------------------------------
// Capability-checked options. The first case is the pre-redesign
// regression: RLU has no reclamation path, yet the old if-chain accepted
// and silently dropped {.reclaim = true}.
// ---------------------------------------------------------------------------

TEST(CapabilityOptions, RluReclaimThrowsInsteadOfSilentlyDropping) {
  try {
    (void)Set::create("RLU-list", SetOptions{.reclaim = true});
    FAIL() << "unsupported option was silently accepted";
  } catch (const UnsupportedOptionError& e) {
    EXPECT_EQ(e.impl(), "RLU-list");
    EXPECT_EQ(e.option(), "reclaim");
  }
}

TEST(CapabilityOptions, EveryImplementationRejectsWhatItCannotHonor) {
  for (const auto& d : ImplRegistry::instance().descriptors()) {
    SCOPED_TRACE(d.name);
    // Defaults are always accepted.
    EXPECT_NE(ImplRegistry::instance().create(d.name), nullptr);
    const SetOptions relaxed{.relax_threshold = 50};
    const SetOptions reclaiming{.reclaim = true};
    if (d.caps.relaxation) {
      EXPECT_NE(ImplRegistry::instance().create(d.name, relaxed), nullptr);
    } else {
      EXPECT_THROW((void)ImplRegistry::instance().create(d.name, relaxed),
                   UnsupportedOptionError);
    }
    if (d.caps.reclamation) {
      EXPECT_NE(ImplRegistry::instance().create(d.name, reclaiming), nullptr);
    } else {
      EXPECT_THROW((void)ImplRegistry::instance().create(d.name, reclaiming),
                   UnsupportedOptionError);
    }
  }
}

TEST(CapabilityOptions, HonoredOptionsActuallyReachTheStructure) {
  // Unsafe structures accept reclaim (they run on EBR); verify the flag is
  // plumbed through rather than merely tolerated.
  Set s = Set::create("Unsafe-list", SetOptions{.reclaim = true});
  auto sess = s.session(0);
  for (KeyT k = 1; k <= 64; ++k) sess.insert(k, k);
  for (KeyT k = 1; k <= 64; ++k) sess.remove(k);
  auto& ds = dynamic_cast<detail::AnySetAdapter<UnsafeListSet>&>(s.impl());
  EXPECT_TRUE(ds.underlying().reclaim_enabled());
}

// ---------------------------------------------------------------------------
// The 19th implementation: a toy wrapper + one registration line. (The
// 18th, LFCA-tree, went in through builtin_impls.h exactly this way.)
// ---------------------------------------------------------------------------

// Capability inference is two-factor (constructor shape AND runtime hook,
// impl_traits.h): a type whose constructor happens to take an unrelated
// integer must NOT be classified as option-capable just because `bool`
// converts — otherwise create() would build it with num_shards=reclaim.
struct ShardedOnly {
  static constexpr bool kLinearizableRq = true;
  explicit ShardedOnly(uint64_t num_shards = 4) { (void)num_shards; }
};
static_assert(!caps_of<ShardedOnly>().relaxation);
static_assert(!caps_of<ShardedOnly>().reclamation);
static_assert(!caps_of<ShardedOnly>().rq_timestamp);

// "New technique": the bundled list under a different registry identity.
// In real life this is a new header; the point is that hooking it up takes
// exactly one registration statement and zero registry edits.
struct ToyWrapperSet : BundledList<KeyT, ValT> {
  using BundledList::BundledList;
  static constexpr const char* kName = "Toy";
  static constexpr bool kLinearizableRq = true;
  static constexpr const char* kStructure = "list";
};

TEST(Registry, ExtraImplementationIsOneRegistrationLine) {
  const size_t before = ImplRegistry::instance().size();
  {
    ScopedRegistration<ToyWrapperSet> reg;  // the one line
    EXPECT_EQ(ImplRegistry::instance().size(), before + 1);
    auto names = any_set_names();
    EXPECT_NE(std::find(names.begin(), names.end(), "Toy-list"), names.end());
    // Fully functional through the facade, capabilities derived from the
    // wrapped type (BundledList: relaxation + reclamation + timestamps).
    Set toy = Set::create("Toy-list", SetOptions{.relax_threshold = 2});
    EXPECT_STREQ(toy.technique(), "Toy");
    EXPECT_TRUE(toy.capabilities().relaxation);
    EXPECT_TRUE(toy.capabilities().rq_timestamp);
    auto sess = toy.session(0);
    EXPECT_TRUE(sess.insert(1, 2));
    EXPECT_EQ(sess.range_query(0, 10).size(), 1u);
    // Builtins are unaffected.
    EXPECT_EQ(builtin_descriptors().size(), 18u);
  }
  // Scope ended: the toy is gone, the table restored.
  EXPECT_EQ(ImplRegistry::instance().size(), before);
  EXPECT_THROW((void)Set::create("Toy-list"), std::invalid_argument);
}

TEST(Registry, DuplicateRegistrationIsAnError) {
  ScopedRegistration<ToyWrapperSet> reg;
  EXPECT_THROW(
      ImplRegistry::instance().add(descriptor_of<ToyWrapperSet>(),
                                   &detail::construct_set<ToyWrapperSet>),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ThreadSession RAII id management.
// ---------------------------------------------------------------------------

TEST(ThreadSessionIds, ReleasedIdsAreRecycled) {
  Set s = Set::create("Bundle-list");
  auto& reg = ThreadRegistry::instance();
  const int baseline = reg.in_use();
  int first_tid;
  {
    ThreadSession sess = s.session();
    first_tid = sess.tid();
    EXPECT_EQ(reg.in_use(), baseline + 1);
    sess.insert(1, 1);
  }
  EXPECT_EQ(reg.in_use(), baseline);
  {
    // The freed id comes back instead of burning a new slot.
    ThreadSession sess = s.session();
    EXPECT_EQ(sess.tid(), first_tid);
  }
  EXPECT_EQ(reg.in_use(), baseline);
}

TEST(ThreadSessionIds, ExplicitIdsAreBorrowedNotOwned) {
  Set s = Set::create("Bundle-list");
  auto& reg = ThreadRegistry::instance();
  const int baseline = reg.in_use();
  {
    ThreadSession sess = s.session(7);
    EXPECT_EQ(sess.tid(), 7);
    EXPECT_EQ(reg.in_use(), baseline);  // nothing acquired
  }
  EXPECT_EQ(reg.in_use(), baseline);  // ... and nothing released
}

TEST(ThreadSessionIds, MoveTransfersOwnership) {
  Set s = Set::create("Bundle-list");
  auto& reg = ThreadRegistry::instance();
  const int baseline = reg.in_use();
  {
    ThreadSession a = s.session();
    ThreadSession b = std::move(a);
    EXPECT_EQ(reg.in_use(), baseline + 1);  // exactly one id held
    b.insert(5, 5);
    EXPECT_TRUE(b.contains(5));
  }
  EXPECT_EQ(reg.in_use(), baseline);
}

TEST(ThreadSessionIds, ConcurrentSessionsGetDistinctIds) {
  Set s = Set::create("Bundle-skiplist");
  constexpr int kThreads = 8;
  std::vector<int> tids(kThreads, -1);
  // Ids are only guaranteed distinct among *live* sessions (a finished
  // session's id is deliberately recycled), so hold all eight across a
  // barrier before recording.
  std::barrier<> all_acquired(kThreads);
  testutil::run_threads(kThreads, [&](int i) {
    ThreadSession sess = s.session();
    all_acquired.arrive_and_wait();
    tids[i] = sess.tid();
    for (KeyT k = 0; k < 100; ++k) sess.insert(i * 1000 + k + 1, k);
  });
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::adjacent_find(tids.begin(), tids.end()), tids.end())
      << "two live sessions shared a dense id";
  EXPECT_EQ(s.size_slow(), size_t(kThreads) * 100);
}

// ---------------------------------------------------------------------------
// RangeSnapshot contracts.
// ---------------------------------------------------------------------------

TEST(RangeSnapshotContract, ResetKeepsCapacityClearsState) {
  RangeSnapshot snap;
  snap.reset(0, 1000);
  for (int i = 0; i < 500; ++i)
    snap.buffer().emplace_back(i, i);
  snap.set_timestamp(42);
  const size_t cap = snap.buffer().capacity();
  snap.reset(5, 10);
  EXPECT_TRUE(snap.empty());
  EXPECT_FALSE(snap.has_timestamp());
  EXPECT_EQ(snap.lo(), 5);
  EXPECT_EQ(snap.hi(), 10);
  EXPECT_EQ(snap.buffer().capacity(), cap) << "reusable buffer reallocated";
}

TEST(RangeSnapshotContract, TimestampsOnlyWhereTheCapabilitySays) {
  for (const auto& d : ImplRegistry::instance().descriptors()) {
    SCOPED_TRACE(d.name);
    Set s = Set::create(d.name);
    auto sess = s.session(0);
    for (KeyT k = 1; k <= 10; ++k) sess.insert(k, k);
    RangeSnapshot snap = sess.range_query(1, 10);
    EXPECT_EQ(snap.size(), 10u);
    EXPECT_EQ(snap.has_timestamp(), d.caps.rq_timestamp);
  }
}

TEST(RangeSnapshotContract, TimestampOrdersSnapshotsAgainstUpdates) {
  Set s = Set::create("Bundle-list");
  auto sess = s.session(0);
  RangeSnapshot a, b;
  sess.insert(1, 1);
  sess.range_query(0, 10, a);
  sess.insert(2, 2);  // advances the global clock
  sess.range_query(0, 10, b);
  ASSERT_TRUE(a.has_timestamp());
  ASSERT_TRUE(b.has_timestamp());
  EXPECT_LT(a.timestamp(), b.timestamp());
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

}  // namespace
}  // namespace bref
