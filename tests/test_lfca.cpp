// LFCA-specific tests: the adaptation machinery driven deterministically
// (planted contention statistics force real splits and joins), range
// queries racing ongoing splits/joins under aggressive tuning, an
// 8-thread prefix-closure sweep and Wing-Gong audit (the generic
// registry/typed suites run at 3-4 threads; the LFCA acceptance bar is
// >= 8), and the EBR reclamation modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "test_util.h"
#include "validation/history.h"
#include "validation/wing_gong.h"

namespace bref {
namespace {

std::set<KeyT> key_set(const LfcaTree<KeyT, ValT>& t) {
  std::set<KeyT> out;
  for (auto& [k, v] : t.to_vector()) out.insert(k);
  return out;
}

// ---------------------------------------------------------------------------
// Deterministic adaptation mechanics. debug_set_stat plants the statistic
// an update pattern would have accumulated; maybe_adapt runs exactly the
// adaptation check an update performs after replacing a base.
// ---------------------------------------------------------------------------

TEST(LfcaAdaptation, HighContentionStatForcesSplit) {
  LfcaTree<KeyT, ValT> t;
  for (KeyT k = 1; k <= 64; ++k) ASSERT_TRUE(t.insert(0, k, k * 10));
  const auto before = key_set(t);
  ASSERT_EQ(t.route_count(), 0u);
  ASSERT_EQ(t.base_count(), 1u);

  t.debug_set_stat(0, 32, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 32);

  EXPECT_EQ(t.splits_performed(), 1u);
  EXPECT_EQ(t.route_count(), 1u);
  EXPECT_EQ(t.base_count(), 2u);
  EXPECT_EQ(key_set(t), before) << "split lost or duplicated keys";
  EXPECT_TRUE(t.check_invariants());
  // Fresh halves start with a neutral statistic: no cascading split.
  t.maybe_adapt(0, 32);
  EXPECT_EQ(t.splits_performed(), 1u);
}

TEST(LfcaAdaptation, LowContentionStatForcesJoin) {
  LfcaTree<KeyT, ValT> t;
  for (KeyT k = 1; k <= 64; ++k) ASSERT_TRUE(t.insert(0, k, k * 10));
  t.debug_set_stat(0, 32, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 32);
  ASSERT_EQ(t.route_count(), 1u);
  const auto before = key_set(t);

  // Join from the left child: drafts the leftmost base of the right
  // subtree, merges, splices the route node out.
  t.debug_set_stat(0, 1, t.tuning().low_threshold - 1);
  t.maybe_adapt(0, 1);

  EXPECT_EQ(t.joins_performed(), 1u);
  EXPECT_EQ(t.route_count(), 0u);
  EXPECT_EQ(t.base_count(), 1u);
  EXPECT_EQ(key_set(t), before) << "join lost or duplicated keys";
  EXPECT_TRUE(t.check_invariants());
  ValT v = 0;
  ASSERT_TRUE(t.contains(0, 40, &v));
  EXPECT_EQ(v, 400);
}

TEST(LfcaAdaptation, JoinFromTheRightSideWorksToo) {
  LfcaTree<KeyT, ValT> t;
  for (KeyT k = 1; k <= 64; ++k) ASSERT_TRUE(t.insert(0, k, k));
  t.debug_set_stat(0, 32, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 32);
  ASSERT_EQ(t.route_count(), 1u);
  const auto before = key_set(t);

  t.debug_set_stat(0, 64, t.tuning().low_threshold - 1);  // right child
  t.maybe_adapt(0, 64);

  EXPECT_EQ(t.joins_performed(), 1u);
  EXPECT_EQ(t.route_count(), 0u);
  EXPECT_EQ(key_set(t), before);
  EXPECT_TRUE(t.check_invariants());
}

TEST(LfcaAdaptation, RepeatedSplitsThenJoinsRestoreASingleBase) {
  LfcaTree<KeyT, ValT> t;
  constexpr KeyT kN = 256;
  for (KeyT k = 1; k <= kN; ++k) ASSERT_TRUE(t.insert(0, k, k));
  const auto before = key_set(t);

  // Split every base (found by probing keys) until the tree holds at
  // least 8 bases, checking the key set after every adaptation.
  while (t.base_count() < 8) {
    const size_t bases = t.base_count();
    for (KeyT k = 1; k <= kN && t.base_count() == bases; k += 8) {
      t.debug_set_stat(0, k, t.tuning().high_threshold + 1);
      t.maybe_adapt(0, k);
    }
    ASSERT_GT(t.base_count(), bases) << "no probe key triggered a split";
    ASSERT_EQ(key_set(t), before);
    ASSERT_TRUE(t.check_invariants());
  }

  // Now join everything back. Every pass plants a join-triggering stat on
  // each probe key; route_count must reach zero with the keys intact.
  int guard = 0;
  while (t.route_count() > 0) {
    ASSERT_LT(guard++, 64) << "joins failed to converge";
    for (KeyT k = 1; k <= kN; k += 8) {
      t.debug_set_stat(0, k, t.tuning().low_threshold - 1);
      t.maybe_adapt(0, k);
    }
    ASSERT_EQ(key_set(t), before);
    ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_EQ(t.base_count(), 1u);
  EXPECT_GT(t.joins_performed(), 0u);
}

TEST(LfcaAdaptation, SingletonAndEmptyBasesDoNotSplit) {
  LfcaTree<KeyT, ValT> t;
  t.debug_set_stat(0, 1, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 1);  // empty leaf: nothing to split
  EXPECT_EQ(t.splits_performed(), 0u);
  ASSERT_TRUE(t.insert(0, 7, 70));
  t.debug_set_stat(0, 7, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 7);  // one element: still nothing to split
  EXPECT_EQ(t.splits_performed(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

// ---------------------------------------------------------------------------
// The statistics feedback loop itself, driven end to end with no direct
// adaptation calls. (Contended-CAS stat increases cannot be forced
// deterministically — on a single-core runner CAS conflicts may never
// happen — so these pin down the two deterministic inputs: uncontended
// drift and the range-query contribution.)
// ---------------------------------------------------------------------------

TEST(LfcaAdaptation, UncontendedUpdatesDriftIntoAJoin) {
  LfcaTuning tuning;
  tuning.low_threshold = -50;
  tuning.low_cont_contrib = 25;  // join after a couple of quiet updates
  LfcaTree<KeyT, ValT> t(/*reclaim=*/false, tuning);
  for (KeyT k = 1; k <= 64; ++k) ASSERT_TRUE(t.insert(0, k, k));
  t.debug_set_stat(0, 32, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 32);
  ASSERT_EQ(t.route_count(), 1u);
  const auto before = key_set(t);

  // Every successful uncontended update lowers the left base's statistic
  // by 25; the third one pushes it past -50 and the update itself (via
  // adapt_if_needed on its own replacement) performs the join.
  int updates = 0;
  while (t.joins_performed() == 0) {
    ASSERT_LT(updates, 10) << "statistic drift never reached the threshold";
    t.remove(0, 1 + (updates % 16));
    t.insert(0, 1 + (updates % 16), 1);
    updates += 2;
  }
  EXPECT_EQ(t.route_count(), 0u);
  EXPECT_EQ(key_set(t), before);
  EXPECT_TRUE(t.check_invariants());
}

TEST(LfcaAdaptation, RangeQueriesSpanningBasesLowerTheStatistic) {
  LfcaTree<KeyT, ValT> t;
  for (KeyT k = 1; k <= 64; ++k) ASSERT_TRUE(t.insert(0, k, k));
  t.debug_set_stat(0, 32, t.tuning().high_threshold + 1);
  t.maybe_adapt(0, 32);
  ASSERT_EQ(t.route_count(), 1u);

  // A query spanning both bases records more_than_one_base in its result
  // storage; both bases are now range bases carrying that storage.
  std::vector<std::pair<KeyT, ValT>> out;
  ASSERT_EQ(t.range_query(0, 1, 64, out), 64u);

  // An update replacing a marked base must subtract range_contrib on top
  // of the uncontended decrement — the signal that pushes heavily
  // range-queried regions toward coarser granularity.
  t.debug_set_stat(0, 1, 0);
  ASSERT_TRUE(t.remove(0, 1));
  EXPECT_EQ(t.debug_stat_of(0, 1),
            -t.tuning().low_cont_contrib - t.tuning().range_contrib);
  EXPECT_TRUE(t.check_invariants());
}

// ---------------------------------------------------------------------------
// Range queries against ongoing splits/joins. Anchor keys are inserted up
// front and never touched: every snapshot must contain each anchor exactly
// once, stay strictly sorted, and stay in range — while a dedicated driver
// thread keeps the tree splitting and joining underneath (planting
// statistics and running the real adaptation paths; CAS contention alone
// is not reproducible on a single-core runner).
// ---------------------------------------------------------------------------

TEST(LfcaRangeQueries, SnapshotsSurviveConcurrentSplitsAndJoins) {
  // Reclaiming mode: the adaptation driver churns whole-leaf copies, which
  // the leaky benchmark mode would park until destruction.
  LfcaTree<KeyT, ValT> t(/*reclaim=*/true);
  constexpr KeyT kSpace = 2000;
  std::vector<KeyT> anchors;
  for (KeyT k = 100; k <= kSpace; k += 100) {
    anchors.push_back(k);
    ASSERT_TRUE(t.insert(0, k, k));
  }
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};
  std::atomic<uint64_t> rqs{0};
  std::thread rq_thread([&] {
    std::vector<std::pair<KeyT, ValT>> out;
    Xoshiro256 rng(17);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(kSpace - 500));
      const KeyT hi = lo + 500;
      t.range_query(8, lo, hi, out);
      if (!testutil::sorted_in_range(out, lo, hi)) violations.fetch_add(1);
      int found = 0;
      for (auto& [k, v] : out)
        if (k % 100 == 0 && k >= lo && k <= hi) ++found;
      int expected = 0;
      for (KeyT a : anchors)
        if (a >= lo && a <= hi) ++expected;
      if (found != expected) violations.fetch_add(1);
      rqs.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread adapt_thread([&] {
    // Alternate forced splits and joins across the key space, exercising
    // the full secure/complete join protocol against the live churn.
    Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT ks = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      t.debug_set_stat(9, ks, t.tuning().high_threshold + 1);
      t.maybe_adapt(9, ks);
      const KeyT kj = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      t.debug_set_stat(9, kj, t.tuning().low_threshold - 1);
      t.maybe_adapt(9, kj);
    }
  });
  testutil::run_threads(8, [&](int tid) {
    Xoshiro256 rng(tid + 31);
    for (int i = 0; i < 6000; ++i) {
      // Churn only off-anchor keys.
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(kSpace));
      if (k % 100 == 0) ++k;
      if (rng.next_range(2) == 0)
        t.insert(tid, k, k);
      else
        t.remove(tid, k);
    }
  });
  stop = true;
  rq_thread.join();
  adapt_thread.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(rqs.load(), 0u);
  EXPECT_GT(t.splits_performed(), 0u) << "driver never split the tree";
  EXPECT_GT(t.joins_performed(), 0u) << "driver never joined the tree";
  EXPECT_TRUE(t.check_invariants());
  for (KeyT a : anchors) EXPECT_TRUE(t.contains(0, a));
}

// ---------------------------------------------------------------------------
// 8-thread linearizability. The stripes argument from
// test_linearizability.cpp at the LFCA acceptance thread count: each
// updater inserts its stripe ascending, so any linearizable snapshot holds
// a per-stripe prefix.
// ---------------------------------------------------------------------------

TEST(LfcaLinearizability, EightThreadInsertSnapshotsArePrefixClosed) {
  constexpr int kUpdaters = 8;
  constexpr KeyT kPerThread = 500;
  LfcaTreeSet ds(/*reclaim=*/true);  // the RQ loop would otherwise park
                                     // every snapshot's storage until exit
  std::atomic<bool> done{false};
  std::atomic<long> violations{0};
  std::thread rq_thread([&] {
    std::vector<std::pair<KeyT, ValT>> out;
    while (!done.load(std::memory_order_acquire)) {
      ds.range_query(kUpdaters, 1, kUpdaters * kPerThread + 1, out);
      if (!testutil::sorted_in_range(out, 1, kUpdaters * kPerThread + 1)) {
        violations.fetch_add(1);
        continue;
      }
      std::vector<std::vector<KeyT>> seen(kUpdaters);
      for (const auto& [k, v] : out)
        seen[(k - 1) % kUpdaters].push_back((k - 1) / kUpdaters);
      for (int u = 0; u < kUpdaters; ++u)
        for (size_t i = 0; i < seen[u].size(); ++i)
          if (seen[u][i] != static_cast<KeyT>(i)) {
            violations.fetch_add(1);
            break;
          }
    }
  });
  testutil::run_threads(kUpdaters, [&](int tid) {
    for (KeyT i = 0; i < kPerThread; ++i)
      ASSERT_TRUE(ds.insert(tid, 1 + tid + i * kUpdaters, i));
  });
  done = true;
  rq_thread.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(ds.size_slow(), size_t(kUpdaters) * kPerThread);
  EXPECT_TRUE(ds.check_invariants());
}

// ---------------------------------------------------------------------------
// 8-thread Wing-Gong audit: short recorded bursts over a few hot keys,
// checked exhaustively against the sequential set model.
// ---------------------------------------------------------------------------

TEST(LfcaLinearizability, EightThreadBurstsPassWingGongAudit) {
  constexpr int kThreads = 8;
  LfcaTreeSet ds;
  for (int burst = 0; burst < 10; ++burst) {
    validation::History pre;
    for (auto& [k, v] : ds.to_vector()) {
      validation::Op op;
      op.kind = validation::OpKind::kInsert;
      op.key = k;
      op.val = v;
      op.result = true;
      op.invoke_ns = 2 * pre.size();
      op.response_ns = 2 * pre.size() + 1;
      pre.push_back(op);
    }
    std::vector<validation::ThreadLog> logs;
    for (int i = 0; i < kThreads; ++i) logs.emplace_back(i);
    testutil::run_threads(kThreads, [&](int tid) {
      Xoshiro256 rng(burst * 131 + tid + 1);
      RangeSnapshot out;
      for (int i = 0; i < 2; ++i) {
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(4));
        const uint64_t t0 = validation::now_ns();
        switch (rng.next_range(4)) {
          case 0: {
            const bool r = ds.insert(tid, k, burst * 10 + i);
            logs[tid].record_point(validation::OpKind::kInsert, k,
                                   burst * 10 + i, r, t0,
                                   validation::now_ns());
            break;
          }
          case 1: {
            const bool r = ds.remove(tid, k);
            logs[tid].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                                   validation::now_ns());
            break;
          }
          case 2: {
            ValT v = 0;
            const bool r = ds.contains(tid, k, &v);
            logs[tid].record_point(validation::OpKind::kContains, k,
                                   r ? v : 0, r, t0, validation::now_ns());
            break;
          }
          default: {
            detail::fill_range_query(ds, tid, 1, 4, out);
            logs[tid].record_rq(out, t0, validation::now_ns());
            break;
          }
        }
      }
    });
    validation::History h = validation::merge(logs);
    h.insert(h.end(), pre.begin(), pre.end());
    auto verdict = validation::check_linearizable(h);
    ASSERT_TRUE(verdict.linearizable)
        << "burst " << burst << ": " << verdict.message;
  }
}

// ---------------------------------------------------------------------------
// Reclamation modes (the Table 1 knob through the LFCA constructor).
// ---------------------------------------------------------------------------

TEST(LfcaReclamation, ReclaimingChurnActuallyFreesNodes) {
  LfcaTree<KeyT, ValT> t(/*reclaim=*/true);
  testutil::run_threads(4, [&](int tid) {
    for (int round = 0; round < 60; ++round) {
      for (KeyT k = 1; k <= 50; ++k) t.insert(tid, k * 4 + tid, k);
      for (KeyT k = 1; k <= 50; ++k) t.remove(tid, k * 4 + tid);
    }
  });
  EXPECT_GT(t.ebr().freed(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(LfcaReclamation, LeakyModeParksDisplacedNodesUntilDestruction) {
  LfcaTree<KeyT, ValT> t(/*reclaim=*/false);
  for (KeyT k = 1; k <= 100; ++k) t.insert(0, k, k);
  for (KeyT k = 1; k <= 100; ++k) t.remove(0, k);
  // Every update displaced one base node (plus leaf): retired, not freed.
  EXPECT_GE(t.ebr().retired(), 200u);
  EXPECT_EQ(t.ebr().freed(), 0u);
}

TEST(LfcaReclamation, RangeStorageSurvivesReclaimingChurn) {
  // Range queries interleaved with reclaiming updates: the refcounted
  // result storage must stay reachable for helpers while marked bases are
  // retired and freed underneath.
  LfcaTuning tuning;
  tuning.high_threshold = 200;
  LfcaTree<KeyT, ValT> t(/*reclaim=*/true, tuning);
  for (KeyT k = 1; k <= 400; ++k) t.insert(0, k, k);
  std::atomic<bool> stop{false};
  std::atomic<long> failures{0};
  std::thread rq_thread([&] {
    std::vector<std::pair<KeyT, ValT>> out;
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(300));
      t.range_query(5, lo, lo + 100, out);
      if (!testutil::sorted_in_range(out, lo, lo + 100)) failures.fetch_add(1);
    }
  });
  testutil::run_threads(4, [&](int tid) {
    Xoshiro256 rng(tid + 9);
    for (int i = 0; i < 5000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(400));
      if (rng.next_range(2) == 0)
        t.insert(tid, k, k);
      else
        t.remove(tid, k);
    }
  });
  stop = true;
  rq_thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(t.ebr().freed(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

}  // namespace
}  // namespace bref
