// Sequential set semantics, identical across every implementation
// (typed suite over all 17 technique x structure combinations), plus a
// randomized model check against std::map. Exercises the session API:
// every operation goes through a TypedSession instead of raw tids, and
// range queries return RangeSnapshots.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "test_util.h"

namespace bref {
namespace {

template <typename DS>
class SetSemantics : public ::testing::Test {
 protected:
  DS ds;
  TypedSession<DS> s{ds, 0};
  RangeSnapshot out;
};

TYPED_TEST_SUITE(SetSemantics, testutil::AllSetTypes);

TYPED_TEST(SetSemantics, EmptyInitially) {
  EXPECT_EQ(this->ds.size_slow(), 0u);
  EXPECT_FALSE(this->s.contains(42));
  EXPECT_EQ(this->s.range_query(0, 1000, this->out), 0u);
}

TYPED_TEST(SetSemantics, InsertThenContains) {
  EXPECT_TRUE(this->s.insert(5, 50));
  EXPECT_TRUE(this->s.contains(5));
  EXPECT_FALSE(this->s.contains(4));
  EXPECT_FALSE(this->s.contains(6));
}

TYPED_TEST(SetSemantics, DuplicateInsertFails) {
  EXPECT_TRUE(this->s.insert(5, 50));
  EXPECT_FALSE(this->s.insert(5, 51));
  ValT v = 0;
  EXPECT_TRUE(this->s.contains(5, &v));
  EXPECT_EQ(v, 50);  // original value retained
}

TYPED_TEST(SetSemantics, RemovePresent) {
  this->s.insert(5, 50);
  EXPECT_TRUE(this->s.remove(5));
  EXPECT_FALSE(this->s.contains(5));
  EXPECT_EQ(this->ds.size_slow(), 0u);
}

TYPED_TEST(SetSemantics, RemoveAbsentFails) {
  EXPECT_FALSE(this->s.remove(5));
  this->s.insert(5, 50);
  EXPECT_FALSE(this->s.remove(6));
  EXPECT_TRUE(this->s.contains(5));
}

TYPED_TEST(SetSemantics, ReinsertAfterRemove) {
  EXPECT_TRUE(this->s.insert(5, 50));
  EXPECT_TRUE(this->s.remove(5));
  EXPECT_TRUE(this->s.insert(5, 51));
  EXPECT_EQ(this->s.get(5), std::optional<ValT>(51));
}

TYPED_TEST(SetSemantics, ValueOutParameter) {
  this->s.insert(7, 700);
  ValT v = 0;
  EXPECT_TRUE(this->s.contains(7, &v));
  EXPECT_EQ(v, 700);
  v = 0;
  EXPECT_FALSE(this->s.contains(8, &v));
  EXPECT_EQ(v, 0);  // untouched on miss
  EXPECT_EQ(this->s.get(8), std::nullopt);
}

TYPED_TEST(SetSemantics, RangeQueryInclusiveBounds) {
  for (KeyT k : {10, 20, 30, 40, 50}) this->s.insert(k, k * 10);
  EXPECT_EQ(this->s.range_query(20, 40, this->out), 3u);
  EXPECT_TRUE(testutil::sorted_in_range(this->out, 20, 40));
  EXPECT_EQ(this->out.lo(), 20);
  EXPECT_EQ(this->out.hi(), 40);
  EXPECT_EQ(this->out.front().first, 20);
  EXPECT_EQ(this->out.back().first, 40);
  EXPECT_EQ(this->out[1], (std::pair<KeyT, ValT>{30, 300}));
}

TYPED_TEST(SetSemantics, RangeQuerySingleKey) {
  for (KeyT k : {10, 20, 30}) this->s.insert(k, k);
  EXPECT_EQ(this->s.range_query(20, 20, this->out), 1u);
  EXPECT_EQ(this->out[0].first, 20);
  EXPECT_EQ(this->s.range_query(15, 15, this->out), 0u);
}

TYPED_TEST(SetSemantics, RangeQueryEmptyWindow) {
  this->s.insert(10, 1);
  this->s.insert(100, 2);
  EXPECT_EQ(this->s.range_query(11, 99, this->out), 0u);
}

TYPED_TEST(SetSemantics, RangeQueryInvertedBoundsIsEmpty) {
  this->s.insert(10, 1);
  EXPECT_EQ(this->s.range_query(50, 40, this->out), 0u);
}

TYPED_TEST(SetSemantics, RangeQueryFullSpan) {
  for (KeyT k = 1; k <= 64; ++k) this->s.insert(k, k);
  EXPECT_EQ(this->s.range_query(1, 64, this->out), 64u);
  EXPECT_TRUE(testutil::sorted_in_range(this->out, 1, 64));
}

TYPED_TEST(SetSemantics, RangeQueryAfterRemovals) {
  for (KeyT k = 1; k <= 20; ++k) this->s.insert(k, k);
  for (KeyT k = 2; k <= 20; k += 2) this->s.remove(k);
  EXPECT_EQ(this->s.range_query(1, 20, this->out), 10u);
  for (const auto& [k, v] : this->out) EXPECT_EQ(k % 2, 1);
}

TYPED_TEST(SetSemantics, SnapshotTimestampMatchesCapability) {
  // Techniques that fix a snapshot timestamp (Bundle, the EBR-RQ family)
  // stamp the logical time their snapshot fixed; everything else reports
  // no timestamp. The flag is part of the registry's derived capabilities,
  // so the two must agree.
  for (KeyT k : {10, 20, 30}) this->s.insert(k, k);
  this->s.range_query(1, 100, this->out);
  EXPECT_EQ(this->out.has_timestamp(), caps_of<TypeParam>().rq_timestamp);
  if (this->out.has_timestamp()) {
    if constexpr (detail::accepts_relaxation_v<TypeParam>) {
      // Bundle's clock advances per update: three updates under T=1
      // advanced it to >= 3 before the snapshot was taken.
      EXPECT_GE(this->out.timestamp(), 3u);
    } else {
      // The EBR-RQ counter advances per *query* (updates only read it), so
      // the first query fixes the initial stamp; require a live one.
      EXPECT_GT(this->out.timestamp(), 0u);
    }
    // A second query must never run the snapshot clock backwards.
    const timestamp_t first = this->out.timestamp();
    this->s.range_query(1, 100, this->out);
    ASSERT_TRUE(this->out.has_timestamp());
    EXPECT_GE(this->out.timestamp(), first);
  }
}

TYPED_TEST(SetSemantics, ToVectorSortedAndComplete) {
  // Insert in scrambled order.
  for (KeyT k : {33, 11, 77, 55, 22, 99, 44, 88, 66}) this->s.insert(k, k);
  auto v = this->ds.to_vector();
  ASSERT_EQ(v.size(), 9u);
  for (size_t i = 1; i < v.size(); ++i)
    EXPECT_LT(v[i - 1].first, v[i].first);
}

TYPED_TEST(SetSemantics, InvariantsHoldThroughMixedOps) {
  Xoshiro256 rng(2026);
  for (int i = 0; i < 500; ++i) {
    KeyT k = static_cast<KeyT>(rng.next_range(64)) + 1;
    if (rng.next_range(2) == 0)
      this->s.insert(k, k);
    else
      this->s.remove(k);
    if (i % 100 == 0) {
      EXPECT_TRUE(this->ds.check_invariants());
    }
  }
  EXPECT_TRUE(this->ds.check_invariants());
}

TYPED_TEST(SetSemantics, RandomOpsMatchStdMap) {
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(7);
  for (int i = 0; i < 3000; ++i) {
    KeyT k = static_cast<KeyT>(rng.next_range(200)) + 1;
    switch (rng.next_range(4)) {
      case 0:
      case 1: {
        bool a = this->s.insert(k, k * 7);
        bool b = model.emplace(k, k * 7).second;
        ASSERT_EQ(a, b) << "insert(" << k << ") diverged at op " << i;
        break;
      }
      case 2: {
        bool a = this->s.remove(k);
        bool b = model.erase(k) > 0;
        ASSERT_EQ(a, b) << "remove(" << k << ") diverged at op " << i;
        break;
      }
      case 3: {
        bool a = this->s.contains(k);
        bool b = model.count(k) > 0;
        ASSERT_EQ(a, b) << "contains(" << k << ") diverged at op " << i;
        break;
      }
    }
  }
  EXPECT_TRUE(testutil::matches_model(this->ds, model));
}

TYPED_TEST(SetSemantics, RandomRangeQueriesMatchStdMap) {
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(13);
  for (KeyT k = 1; k <= 300; ++k) {
    if (rng.next_range(2) == 0) {
      this->s.insert(k, k);
      model.emplace(k, k);
    }
  }
  for (int i = 0; i < 200; ++i) {
    KeyT lo = static_cast<KeyT>(rng.next_range(300)) + 1;
    KeyT hi = lo + static_cast<KeyT>(rng.next_range(60));
    this->s.range_query(lo, hi, this->out);
    std::vector<std::pair<KeyT, ValT>> expect;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it)
      expect.emplace_back(it->first, it->second);
    ASSERT_EQ(this->out, expect) << "rq [" << lo << "," << hi << "]";
  }
}

TYPED_TEST(SetSemantics, LargeSequentialFill) {
  for (KeyT k = 1; k <= 2000; ++k) ASSERT_TRUE(this->s.insert(k, k));
  EXPECT_EQ(this->ds.size_slow(), 2000u);
  EXPECT_TRUE(this->ds.check_invariants());
  for (KeyT k = 1; k <= 2000; ++k) ASSERT_TRUE(this->s.remove(k));
  EXPECT_EQ(this->ds.size_slow(), 0u);
}

TYPED_TEST(SetSemantics, DescendingFillExercisesTreeShape) {
  for (KeyT k = 500; k >= 1; --k) ASSERT_TRUE(this->s.insert(k, k));
  EXPECT_EQ(this->ds.size_slow(), 500u);
  EXPECT_TRUE(this->ds.check_invariants());
  EXPECT_EQ(this->s.range_query(100, 199, this->out), 100u);
}

}  // namespace
}  // namespace bref
