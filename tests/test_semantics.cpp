// Sequential set semantics, identical across every implementation
// (typed suite over all 15 technique x structure combinations), plus a
// randomized model check against std::map.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "test_util.h"

namespace bref {
namespace {

template <typename DS>
class SetSemantics : public ::testing::Test {
 protected:
  DS ds;
  std::vector<std::pair<KeyT, ValT>> out;
};

TYPED_TEST_SUITE(SetSemantics, testutil::AllSetTypes);

TYPED_TEST(SetSemantics, EmptyInitially) {
  EXPECT_EQ(this->ds.size_slow(), 0u);
  EXPECT_FALSE(this->ds.contains(0, 42));
  EXPECT_EQ(this->ds.range_query(0, 0, 1000, this->out), 0u);
}

TYPED_TEST(SetSemantics, InsertThenContains) {
  EXPECT_TRUE(this->ds.insert(0, 5, 50));
  EXPECT_TRUE(this->ds.contains(0, 5));
  EXPECT_FALSE(this->ds.contains(0, 4));
  EXPECT_FALSE(this->ds.contains(0, 6));
}

TYPED_TEST(SetSemantics, DuplicateInsertFails) {
  EXPECT_TRUE(this->ds.insert(0, 5, 50));
  EXPECT_FALSE(this->ds.insert(0, 5, 51));
  ValT v = 0;
  EXPECT_TRUE(this->ds.contains(0, 5, &v));
  EXPECT_EQ(v, 50);  // original value retained
}

TYPED_TEST(SetSemantics, RemovePresent) {
  this->ds.insert(0, 5, 50);
  EXPECT_TRUE(this->ds.remove(0, 5));
  EXPECT_FALSE(this->ds.contains(0, 5));
  EXPECT_EQ(this->ds.size_slow(), 0u);
}

TYPED_TEST(SetSemantics, RemoveAbsentFails) {
  EXPECT_FALSE(this->ds.remove(0, 5));
  this->ds.insert(0, 5, 50);
  EXPECT_FALSE(this->ds.remove(0, 6));
  EXPECT_TRUE(this->ds.contains(0, 5));
}

TYPED_TEST(SetSemantics, ReinsertAfterRemove) {
  EXPECT_TRUE(this->ds.insert(0, 5, 50));
  EXPECT_TRUE(this->ds.remove(0, 5));
  EXPECT_TRUE(this->ds.insert(0, 5, 51));
  ValT v = 0;
  EXPECT_TRUE(this->ds.contains(0, 5, &v));
  EXPECT_EQ(v, 51);
}

TYPED_TEST(SetSemantics, ValueOutParameter) {
  this->ds.insert(0, 7, 700);
  ValT v = 0;
  EXPECT_TRUE(this->ds.contains(0, 7, &v));
  EXPECT_EQ(v, 700);
  v = 0;
  EXPECT_FALSE(this->ds.contains(0, 8, &v));
  EXPECT_EQ(v, 0);  // untouched on miss
}

TYPED_TEST(SetSemantics, RangeQueryInclusiveBounds) {
  for (KeyT k : {10, 20, 30, 40, 50}) this->ds.insert(0, k, k * 10);
  EXPECT_EQ(this->ds.range_query(0, 20, 40, this->out), 3u);
  EXPECT_TRUE(testutil::sorted_in_range(this->out, 20, 40));
  EXPECT_EQ(this->out.front().first, 20);
  EXPECT_EQ(this->out.back().first, 40);
  EXPECT_EQ(this->out[1], (std::pair<KeyT, ValT>{30, 300}));
}

TYPED_TEST(SetSemantics, RangeQuerySingleKey) {
  for (KeyT k : {10, 20, 30}) this->ds.insert(0, k, k);
  EXPECT_EQ(this->ds.range_query(0, 20, 20, this->out), 1u);
  EXPECT_EQ(this->out[0].first, 20);
  EXPECT_EQ(this->ds.range_query(0, 15, 15, this->out), 0u);
}

TYPED_TEST(SetSemantics, RangeQueryEmptyWindow) {
  this->ds.insert(0, 10, 1);
  this->ds.insert(0, 100, 2);
  EXPECT_EQ(this->ds.range_query(0, 11, 99, this->out), 0u);
}

TYPED_TEST(SetSemantics, RangeQueryInvertedBoundsIsEmpty) {
  this->ds.insert(0, 10, 1);
  EXPECT_EQ(this->ds.range_query(0, 50, 40, this->out), 0u);
}

TYPED_TEST(SetSemantics, RangeQueryFullSpan) {
  for (KeyT k = 1; k <= 64; ++k) this->ds.insert(0, k, k);
  EXPECT_EQ(this->ds.range_query(0, 1, 64, this->out), 64u);
  EXPECT_TRUE(testutil::sorted_in_range(this->out, 1, 64));
}

TYPED_TEST(SetSemantics, RangeQueryAfterRemovals) {
  for (KeyT k = 1; k <= 20; ++k) this->ds.insert(0, k, k);
  for (KeyT k = 2; k <= 20; k += 2) this->ds.remove(0, k);
  EXPECT_EQ(this->ds.range_query(0, 1, 20, this->out), 10u);
  for (const auto& [k, v] : this->out) EXPECT_EQ(k % 2, 1);
}

TYPED_TEST(SetSemantics, ToVectorSortedAndComplete) {
  // Insert in scrambled order.
  for (KeyT k : {33, 11, 77, 55, 22, 99, 44, 88, 66}) this->ds.insert(0, k, k);
  auto v = this->ds.to_vector();
  ASSERT_EQ(v.size(), 9u);
  for (size_t i = 1; i < v.size(); ++i)
    EXPECT_LT(v[i - 1].first, v[i].first);
}

TYPED_TEST(SetSemantics, InvariantsHoldThroughMixedOps) {
  Xoshiro256 rng(2026);
  for (int i = 0; i < 500; ++i) {
    KeyT k = static_cast<KeyT>(rng.next_range(64)) + 1;
    if (rng.next_range(2) == 0)
      this->ds.insert(0, k, k);
    else
      this->ds.remove(0, k);
    if (i % 100 == 0) {
      EXPECT_TRUE(this->ds.check_invariants());
    }
  }
  EXPECT_TRUE(this->ds.check_invariants());
}

TYPED_TEST(SetSemantics, RandomOpsMatchStdMap) {
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(7);
  for (int i = 0; i < 3000; ++i) {
    KeyT k = static_cast<KeyT>(rng.next_range(200)) + 1;
    switch (rng.next_range(4)) {
      case 0:
      case 1: {
        bool a = this->ds.insert(0, k, k * 7);
        bool b = model.emplace(k, k * 7).second;
        ASSERT_EQ(a, b) << "insert(" << k << ") diverged at op " << i;
        break;
      }
      case 2: {
        bool a = this->ds.remove(0, k);
        bool b = model.erase(k) > 0;
        ASSERT_EQ(a, b) << "remove(" << k << ") diverged at op " << i;
        break;
      }
      case 3: {
        bool a = this->ds.contains(0, k);
        bool b = model.count(k) > 0;
        ASSERT_EQ(a, b) << "contains(" << k << ") diverged at op " << i;
        break;
      }
    }
  }
  EXPECT_TRUE(testutil::matches_model(this->ds, model));
}

TYPED_TEST(SetSemantics, RandomRangeQueriesMatchStdMap) {
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(13);
  for (KeyT k = 1; k <= 300; ++k) {
    if (rng.next_range(2) == 0) {
      this->ds.insert(0, k, k);
      model.emplace(k, k);
    }
  }
  for (int i = 0; i < 200; ++i) {
    KeyT lo = static_cast<KeyT>(rng.next_range(300)) + 1;
    KeyT hi = lo + static_cast<KeyT>(rng.next_range(60));
    this->ds.range_query(0, lo, hi, this->out);
    std::vector<std::pair<KeyT, ValT>> expect;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it)
      expect.emplace_back(it->first, it->second);
    ASSERT_EQ(this->out, expect) << "rq [" << lo << "," << hi << "]";
  }
}

TYPED_TEST(SetSemantics, LargeSequentialFill) {
  for (KeyT k = 1; k <= 2000; ++k) ASSERT_TRUE(this->ds.insert(0, k, k));
  EXPECT_EQ(this->ds.size_slow(), 2000u);
  EXPECT_TRUE(this->ds.check_invariants());
  for (KeyT k = 1; k <= 2000; ++k) ASSERT_TRUE(this->ds.remove(0, k));
  EXPECT_EQ(this->ds.size_slow(), 0u);
}

TYPED_TEST(SetSemantics, DescendingFillExercisesTreeShape) {
  for (KeyT k = 500; k >= 1; --k) ASSERT_TRUE(this->ds.insert(0, k, k));
  EXPECT_EQ(this->ds.size_slow(), 500u);
  EXPECT_TRUE(this->ds.check_invariants());
  EXPECT_EQ(this->ds.range_query(0, 100, 199, this->out), 100u);
}

}  // namespace
}  // namespace bref
