// Chaos and degradation suite for the wire path (ISSUE 8 / net/guard.h):
//
//   * seeded syscall fault injection (net/testing/faultfd.h) under a
//     mixed loopback workload — lossless faults (EINTR, short I/O) must
//     leave semantics untouched, so the surviving RANGE snapshots feed
//     the timestamp-aware Wing–Gong linearizability check;
//   * ECONNRESET storms — op outcomes become unknowable, so the asserts
//     are survival ones: every failure is a typed NetError, the server
//     keeps answering afterwards;
//   * EMFILE at accept4 — the acceptor backs off instead of dying;
//   * graceful degradation: slow readers disconnected at the pending
//     cap, idle connections reaped, overload shed with kErrOverloaded
//     and recovered from, chunked whole-keyspace scans linearizable at
//     ONE timestamp while point ops run, stop() drain deadline-bounded;
//   * trace-slot accounting (ISSUE 10): per-request trace scratch slots
//     all return to the pool after reset storms, shed bursts, and
//     reaped-mid-scan connections — traces terminate, never leak.
//
// Seeds: BREF_CHAOS_SEED (env) re-seeds every FaultPlan, so CI can sweep
// seeds without recompiling. Faults decide deterministically per seed,
// but thread interleaving still varies — asserts are properties, never
// exact fault placements.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "net/testing/faultfd.h"
#include "validation/wing_gong.h"

namespace {

using namespace bref;
using namespace bref::net;
using bref::net::testing::FaultPlan;
using bref::net::testing::FaultScope;

uint64_t chaos_seed() {
  const char* s = std::getenv("BREF_CHAOS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 1;
}

ServerOptions small_opts(int workers = 2, size_t shards = 4) {
  ServerOptions o;
  o.workers = workers;
  o.shards = shards;
  o.key_lo = 0;
  o.key_hi = 1 << 16;
  return o;
}

uint64_t now_ms() { return Client::now_ms(); }

/// Spin on a predicate with a deadline (stats are eventually consistent
/// with the worker loops' relaxed counters).
template <typename F>
bool eventually(F&& f, uint64_t timeout_ms = 5'000) {
  const uint64_t deadline = now_ms() + timeout_ms;
  while (!f()) {
    if (now_ms() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

// ---- lossless faults: semantics must survive verbatim ----------------------

TEST(Chaos, LosslessFaultsAuditLinearizable) {
  constexpr int kThreads = 6;
  ServerOptions o = small_opts(/*workers=*/3, /*shards=*/4);
  o.key_hi = 8;  // keys 1..7 spread over all four shards
  Server srv(o);
  srv.start();

  FaultPlan plan;
  plan.seed = chaos_seed();
  plan.eintr_permille = 60;
  plan.short_io_permille = 120;  // no resets: byte stream stays lossless
  FaultScope scope(plan);

  for (int burst = 0; burst < 6; ++burst) {
    std::vector<validation::ThreadLog> logs;
    for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        Client c(srv.port());
        Xoshiro256 rng(chaos_seed() * 7919 + burst * 131 + t + 1);
        RangeSnapshot out;
        for (int i = 0; i < 4; ++i) {
          const KeyT k = 1 + static_cast<KeyT>(rng.next_range(7));
          const uint64_t t0 = validation::now_ns();
          switch (rng.next_range(4)) {
            case 0: {
              const ValT v = burst * 100 + t * 10 + i;
              const bool r = c.insert(k, v);
              logs[t].record_point(validation::OpKind::kInsert, k, v, r, t0,
                                   validation::now_ns());
              break;
            }
            case 1: {
              const bool r = c.remove(k);
              logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                                   validation::now_ns());
              break;
            }
            case 2: {
              const std::optional<ValT> v = c.get(k);
              logs[t].record_point(validation::OpKind::kContains, k,
                                   v.value_or(0), v.has_value(), t0,
                                   validation::now_ns());
              break;
            }
            default: {
              c.range(1, 8, out);  // all shards -> one-timestamp path
              logs[t].record_rq(out, t0, validation::now_ns());
              break;
            }
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    // Reset the keyspace between bursts so each audit is self-contained.
    validation::History h = validation::merge(logs);
    const auto verdict = validation::check_linearizable_with_ts(h);
    ASSERT_TRUE(verdict.linearizable)
        << "seed " << plan.seed << " burst " << burst << ": "
        << verdict.message;
    {
      Client c(srv.port());
      for (KeyT k = 1; k < 8; ++k) c.remove(k);
    }
  }
  // The run is only meaningful if faults actually fired.
  EXPECT_GT(scope.injector().eintr_injected() +
                scope.injector().short_io_injected(),
            0u);
  srv.stop();  // quiesce before the scope uninstalls
}

// ---- lossy faults: survival + typed errors ---------------------------------

TEST(Chaos, ResetStormSurvivesWithTypedErrors) {
  Server srv(small_opts());
  srv.start();
  std::atomic<uint64_t> ok{0}, net_errors{0};
  {
    FaultPlan plan;
    plan.seed = chaos_seed() + 1;
    plan.eintr_permille = 40;
    plan.short_io_permille = 80;
    plan.reset_permille = 25;  // outcomes unknowable; assert survival only
    FaultScope scope(plan);
    std::vector<std::thread> ts;
    for (int t = 0; t < 6; ++t) {
      ts.emplace_back([&, t] {
        Xoshiro256 rng(chaos_seed() * 31 + t);
        for (int i = 0; i < 60; ++i) {
          try {
            ClientOptions copt;
            copt.op_deadline_ms = 3'000;
            Client c(srv.port(), copt);
            const KeyT k = static_cast<KeyT>(rng.next_range(1 << 10));
            c.insert(k, t);
            c.get(k);
            ok.fetch_add(1, std::memory_order_relaxed);
          } catch (const NetError&) {
            net_errors.fetch_add(1, std::memory_order_relaxed);
          }
          // Anything else (std::bad_alloc, logic_error...) fails the test.
        }
      });
    }
    for (auto& th : ts) th.join();
    srv.stop();  // quiesce the server's wrapped syscalls too
  }
  // The storm must have produced both outcomes to mean anything, and the
  // server must come back clean after it.
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(net_errors.load(), 0u);
  srv.start();
  Client c(srv.port());
  EXPECT_TRUE(c.ping());
  srv.stop();
}

TEST(Chaos, EmfileAcceptBacksOffAndRecovers) {
  Server srv(small_opts());
  srv.start();
  {
    FaultPlan plan;
    plan.seed = chaos_seed() + 2;
    plan.emfile_permille = 400;  // ~40% of accepts answer EMFILE
    FaultScope scope(plan);
    int connected = 0;
    for (int i = 0; i < 12; ++i) {
      try {
        ClientOptions copt;
        copt.connect_timeout_ms = 3'000;
        Client c(srv.port(), copt);
        if (c.ping()) ++connected;
      } catch (const NetError&) {
        // An unlucky streak within the deadline is acceptable...
      }
    }
    EXPECT_GT(connected, 0);  // ...but the acceptor must not have died.
    EXPECT_GT(scope.injector().emfiles_injected(), 0u);
  }
  Client c(srv.port());
  EXPECT_TRUE(c.ping());
  srv.stop();
}

// ---- graceful degradation --------------------------------------------------

TEST(Guard, SlowReaderIsDisconnectedAtPendingCap) {
  ServerOptions o = small_opts(/*workers=*/1);
  o.guard.max_conn_pending = 64 * 1024;
  o.guard.scan_chunk_keys = 0;       // inline RANGEs: responses pile up
  o.guard.max_wave_bytes = 64 << 20; // don't shed; we want the pileup
  Server srv(o);
  srv.start();
  {
    Client w(srv.port());
    for (KeyT k = 0; k < 4000; ++k) w.insert(k, k);
  }
  // Ask for ~64KB responses, many times, and never read a byte.
  Client slow(srv.port());
  std::vector<uint8_t> reqs;
  for (int i = 0; i < 400; ++i) encode_range(reqs, 0, 4000);
  try {
    slow.write_all(reqs.data(), reqs.size());
  } catch (const NetError&) {
    // The server may reset the connection while we are still writing.
  }
  EXPECT_TRUE(eventually(
      [&] { return srv.stats().reaped_slow_reader >= 1; }))
      << srv.stats_json();
  // The server itself stays healthy for well-behaved clients.
  Client c(srv.port());
  EXPECT_TRUE(c.ping());
  srv.stop();
}

TEST(Guard, IdleConnectionsAreReaped) {
  ServerOptions o = small_opts(/*workers=*/1);
  o.guard.idle_timeout_ms = 120;
  Server srv(o);
  srv.start();
  Client idle(srv.port());
  ASSERT_TRUE(idle.ping());  // adopted and active
  EXPECT_TRUE(eventually([&] { return srv.stats().reaped_idle >= 1; }))
      << srv.stats_json();
  // The reaped client sees a typed error, not a hang.
  try {
    idle.ping();
    // A race where the FIN is still in flight can let one op through;
    // the next must fail.
    idle.ping();
    FAIL() << "expected NetError after idle reap";
  } catch (const NetError& e) {
    EXPECT_TRUE(e.kind() == NetErrorKind::kEof ||
                e.kind() == NetErrorKind::kReset ||
                e.kind() == NetErrorKind::kTimeout)
        << to_string(e.kind());
  }
  srv.stop();
}

TEST(Guard, OverloadShedsThenRecovers) {
  ServerOptions o = small_opts(/*workers=*/1);
  o.guard.max_wave_frames = 8;  // tiny budget: deep pipelines must shed
  Server srv(o);
  srv.start();

  ClientOptions copt;
  copt.overload_retries = 0;  // surface sheds; don't absorb them
  Client c(srv.port(), copt);
  Pipeline p(c);
  for (int i = 0; i < 2000; ++i) p.insert(i, i);
  const std::vector<Reply> rs = p.collect();
  ASSERT_EQ(rs.size(), 2000u);
  size_t shed = 0, served = 0;
  uint32_t hint = 0;
  for (const Reply& r : rs) {
    if (r.overloaded()) {
      ++shed;
      hint = r.retry_after_ms;
    } else {
      ++served;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_GT(hint, 0u);  // the retry-after hint made it across the wire
  EXPECT_EQ(srv.stats().shed, shed);
  EXPECT_EQ(srv.stats().protocol_errors, 0u);  // sheds are not errors

  // Recovery: with the burst gone, the sync surface (which retries
  // kErrOverloaded transparently) works and the gauge clears.
  Client c2(srv.port());
  EXPECT_TRUE(c2.insert(99'999, 1));
  EXPECT_TRUE(eventually([&] { return srv.stats().overloaded == 0; }))
      << srv.stats_json();
  srv.stop();
}

TEST(Guard, ExemptOpsAnswerDuringOverload) {
  ServerOptions o = small_opts(/*workers=*/1);
  o.guard.max_wave_frames = 4;
  Server srv(o);
  srv.start();
  ClientOptions copt;
  copt.overload_retries = 0;
  Client c(srv.port(), copt);
  // One wave: a deep burst of point ops with PING and STATS behind them.
  std::vector<uint8_t> reqs;
  for (int i = 0; i < 500; ++i) encode_insert(reqs, i, i);
  encode_ping(reqs);
  encode_stats(reqs);
  c.write_all(reqs.data(), reqs.size());
  size_t shed = 0;
  for (int i = 0; i < 500; ++i)
    if (c.read_reply(Op::kInsert).overloaded()) ++shed;
  EXPECT_GT(shed, 0u);
  // Both introspection ops behind the shed burst still answered kOk.
  EXPECT_EQ(c.read_reply(Op::kPing).status, Status::kOk);
  const Reply st = c.read_reply(Op::kStats);
  EXPECT_EQ(st.status, Status::kOk);
  EXPECT_NE(st.text.find("\"guard\""), std::string::npos);
  srv.stop();
}

// ---- chunked scans ---------------------------------------------------------

TEST(Guard, ChunkedScanReturnsExactSnapshotAtOneTimestamp) {
  ServerOptions o = small_opts(/*workers=*/1, /*shards=*/4);
  o.key_hi = 1 << 12;
  o.guard.scan_chunk_keys = 64;  // whole keyspace = many slices
  Server srv(o);
  srv.start();
  Client c(srv.port());
  size_t expected = 0;
  for (KeyT k = 1; k < (1 << 12); k += 3) {
    ASSERT_TRUE(c.insert(k, k * 2));
    ++expected;
  }
  RangeSnapshot snap;
  ASSERT_EQ(c.range(0, 1 << 12, snap), expected);
  EXPECT_TRUE(snap.has_timestamp());
  for (const auto& [k, v] : snap) EXPECT_EQ(v, k * 2);
  const ServerStats st = srv.stats();
  EXPECT_GE(st.chunked_rqs, 1u);
  EXPECT_GT(st.scan_slices, st.chunked_rqs);  // genuinely sliced
  srv.stop();
}

TEST(Guard, ChunkedScansLinearizeWithConcurrentPointOps) {
  constexpr int kMutators = 4;
  ServerOptions o = small_opts(/*workers=*/2, /*shards=*/4);
  o.key_hi = 1 << 10;
  o.guard.scan_chunk_keys = 32;
  Server srv(o);
  srv.start();

  std::vector<validation::ThreadLog> logs;
  for (int t = 0; t < kMutators + 1; ++t) logs.emplace_back(t);
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kMutators; ++t) {
    ts.emplace_back([&, t] {
      Client c(srv.port());
      Xoshiro256 rng(chaos_seed() * 17 + t + 1);
      for (int i = 0; i < 120 && !stop.load(); ++i) {
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range((1 << 10) - 1));
        const uint64_t t0 = validation::now_ns();
        if (rng.next_range(2) == 0) {
          const bool r = c.insert(k, t * 1000 + i);
          logs[t].record_point(validation::OpKind::kInsert, k, t * 1000 + i,
                               r, t0, validation::now_ns());
        } else {
          const bool r = c.remove(k);
          logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                               validation::now_ns());
        }
      }
    });
  }
  {
    // Whole-keyspace scans, chunked server-side, concurrent with the mix.
    Client c(srv.port());
    RangeSnapshot out;
    for (int i = 0; i < 12; ++i) {
      const uint64_t t0 = validation::now_ns();
      c.range(0, 1 << 10, out);
      EXPECT_TRUE(out.has_timestamp());  // ONE linearization point each
      logs[kMutators].record_rq(out, t0, validation::now_ns());
    }
  }
  stop.store(true);
  for (auto& th : ts) th.join();
  const auto verdict =
      validation::check_linearizable_with_ts(validation::merge(logs));
  ASSERT_TRUE(verdict.linearizable) << verdict.message;
  EXPECT_GE(srv.stats().chunked_rqs, 12u);
  srv.stop();
}

// ---- trace-slot accounting (ISSUE 10) --------------------------------------
//
// Every traced request holds a per-worker scratch slot from trace_open to
// its terminal span (flush, shed, or error/disconnect). The invariant the
// chaos suite guards: after any storm quiesces, scratch_in_use returns to
// 0 — a leaked slot means some abort path forgot to close its trace.

TEST(Trace, ScratchSlotsAllReturnAfterResetStorm) {
  if (!obs::kEnabled) GTEST_SKIP() << "trace capture compiled out (BREF_OBS=OFF)";
  Server srv(small_opts());
  srv.start();
  {
    // Commit-all policy: every request that completes must travel the
    // whole open -> stamp -> close path, maximizing slot churn.
    Client cfg(srv.port());
    ASSERT_TRUE(cfg.trace_config(0, 0));
  }
  std::atomic<uint64_t> ok{0}, net_errors{0};
  {
    FaultPlan plan;
    plan.seed = chaos_seed() + 3;
    plan.eintr_permille = 40;
    plan.short_io_permille = 80;
    plan.reset_permille = 25;  // connections die with traces mid-flight
    FaultScope scope(plan);
    std::vector<std::thread> ts;
    for (int t = 0; t < 6; ++t) {
      ts.emplace_back([&, t] {
        Xoshiro256 rng(chaos_seed() * 57 + t);
        for (int i = 0; i < 40; ++i) {
          try {
            ClientOptions copt;
            copt.op_deadline_ms = 3'000;
            copt.trace = true;  // every frame carries a trace context
            Client c(srv.port(), copt);
            const KeyT k = static_cast<KeyT>(rng.next_range(1 << 10));
            c.insert(k, t);
            c.get(k);
            RangeSnapshot out;
            c.range(0, 256, out);  // multi-shard path under faults too
            ok.fetch_add(1, std::memory_order_relaxed);
          } catch (const NetError&) {
            net_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    EXPECT_GT(ok.load(), 0u);
    EXPECT_GT(net_errors.load(), 0u);  // resets actually tore traced conns
    // Read stats while the workers still exist — stop() tears them (and
    // their counters) down. Closure processing is async, so spin.
    EXPECT_GT(srv.stats().trace_committed, 0u) << srv.stats_json();
    EXPECT_TRUE(eventually(
        [&] { return srv.stats().trace_scratch_in_use == 0; }))
        << srv.stats_json();
    srv.stop();  // quiesce before the scope uninstalls
  }
}

TEST(Trace, ScratchSlotsAllReturnAfterShedBurst) {
  if (!obs::kEnabled) GTEST_SKIP() << "trace capture compiled out (BREF_OBS=OFF)";
  ServerOptions o = small_opts(/*workers=*/1);
  o.guard.max_wave_frames = 8;  // deep traced pipelines must shed
  Server srv(o);
  srv.start();
  {
    Client cfg(srv.port());
    ASSERT_TRUE(cfg.trace_config(0, 0));
  }
  ClientOptions copt;
  copt.overload_retries = 0;
  copt.trace = true;
  Client c(srv.port(), copt);
  Pipeline p(c);
  for (int i = 0; i < 2000; ++i) p.insert(i, i);
  const std::vector<Reply> rs = p.collect();
  ASSERT_EQ(rs.size(), 2000u);
  size_t shed = 0;
  for (const Reply& r : rs)
    if (r.overloaded()) ++shed;
  EXPECT_GT(shed, 0u);  // shed traces took the kShed terminal span
  // Quiesced: every slot back, whether its request executed or shed.
  // (Exhaustion is expected here — 2000 in-flight traced frames vs a
  // 64-slot pool — and must degrade to untraced requests, not failures.)
  EXPECT_TRUE(eventually(
      [&] { return srv.stats().trace_scratch_in_use == 0; }))
      << srv.stats_json();
  EXPECT_GT(srv.stats().trace_committed, 0u);
  srv.stop();
}

TEST(Trace, ReapedScanConnectionsFreeTraceSlots) {
  ServerOptions o = small_opts(/*workers=*/1);
  o.key_hi = 1 << 12;
  o.guard.max_conn_pending = 64 * 1024;
  o.guard.scan_chunk_keys = 64;      // traced chunked scans hold slots
  o.guard.max_wave_bytes = 64 << 20;
  Server srv(o);
  srv.start();
  {
    Client cfg(srv.port());
    ASSERT_TRUE(cfg.trace_config(0, 0));
    Client w(srv.port());
    for (KeyT k = 0; k < 4000; ++k) w.insert(k, k);
  }
  // Traced whole-keyspace RANGEs from a reader that never reads: the
  // pending cap reaps the connection while chunked scans (and their
  // trace slots) are live; drop_conn must abort them.
  Client slow(srv.port());
  std::vector<uint8_t> reqs;
  uint64_t id = 0x5105105105105100ull;
  for (int i = 0; i < 400; ++i) {
    const size_t off = reqs.size();
    encode_range(reqs, 0, 4000);
    stamp_trace_context(reqs, off, ++id);
  }
  try {
    slow.write_all(reqs.data(), reqs.size());
  } catch (const NetError&) {
  }
  EXPECT_TRUE(eventually(
      [&] { return srv.stats().reaped_slow_reader >= 1; }))
      << srv.stats_json();
  EXPECT_TRUE(eventually(
      [&] { return srv.stats().trace_scratch_in_use == 0; }))
      << srv.stats_json();
  srv.stop();
}

// ---- shutdown --------------------------------------------------------------

TEST(Guard, StopDrainIsDeadlineBounded) {
  ServerOptions o = small_opts(/*workers=*/1);
  o.guard.drain_deadline_ms = 200;
  o.guard.scan_chunk_keys = 0;
  o.guard.max_conn_pending = 0;   // let the backlog build; stop() drains it
  o.guard.max_wave_bytes = 64 << 20;
  Server srv(o);
  srv.start();
  {
    Client w(srv.port());
    for (KeyT k = 0; k < 4000; ++k) w.insert(k, k);
  }
  // A reader that never reads, with a deep response backlog pending.
  Client slow(srv.port());
  std::vector<uint8_t> reqs;
  for (int i = 0; i < 400; ++i) encode_range(reqs, 0, 4000);
  try {
    slow.write_all(reqs.data(), reqs.size());
  } catch (const NetError&) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const uint64_t t0 = now_ms();
  srv.stop();
  const uint64_t took = now_ms() - t0;
  EXPECT_LT(took, 5'000u) << "stop() must be deadline-bounded";
  // The undelivered backlog is observable, not silent.
  EXPECT_GE(srv.stats().stop_dropped, 1u);
}

}  // namespace
