// Memory-reclamation tests (Section 7 / supplementary B): bundle-entry
// recycling via the background cleaner, EBR-backed node reclamation, the
// paper's space-overhead claim (amortized two bundle entries per insert),
// and limbo-list bounding for the EBR-RQ baselines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/bundle_cleaner.h"
#include "test_util.h"

namespace bref {
namespace {

TEST(SpaceOverhead, InsertOnlyListHasTwoEntriesPerNode) {
  // Paper, Section 4 "Space overhead": n inserts (no removes) produce 2n
  // bundle entries (one in the new node, one in the predecessor), plus the
  // two sentinel-initialization entries.
  BundleListSet list;
  constexpr KeyT kN = 500;
  for (KeyT k = 1; k <= kN; ++k) list.insert(0, k, k);
  EXPECT_EQ(list.total_bundle_entries(), 2 * size_t(kN) + 2);
}

TEST(SpaceOverhead, CleanerWithActiveRqPreservesItsSnapshot) {
  // A pinned range query must keep the entries its snapshot needs alive;
  // entries older than its timestamp may go.
  BundleListSet list;
  for (KeyT k = 1; k <= 100; ++k) list.insert(0, k, k);
  // Start an RQ and freeze its announced timestamp by hand.
  auto ts = list.rq_tracker().begin(5, list.global_timestamp());
  // More updates after the snapshot.
  for (KeyT k = 101; k <= 200; ++k) list.insert(0, k, k);
  for (KeyT k = 1; k <= 50; ++k) list.remove(0, k);
  // Pruning with the RQ active may drop entries strictly older than each
  // bundle's covering entry for ts, but must keep every covering entry:
  // afterwards each live bundle still satisfies the announced snapshot.
  list.prune_bundles(kMaxThreads - 1);
  (void)ts;
  const size_t with_rq = list.total_bundle_entries();
  // Once the RQ retires, its covering entries become prunable too.
  list.rq_tracker().end(5);
  size_t pruned = list.prune_bundles(kMaxThreads - 1);
  EXPECT_GT(pruned, 0u) << "entries pinned by the RQ were not reclaimable "
                           "after it finished";
  EXPECT_LT(list.total_bundle_entries(), with_rq);
  std::vector<std::pair<KeyT, ValT>> out;
  EXPECT_EQ(list.range_query(0, 1, 200, out), 150u);
  EXPECT_TRUE(list.check_invariants());
}

TEST(Cleaner, ConcurrentCleanerNeverBreaksQueries) {
  BundledSkipList<KeyT, ValT> sl(1, /*reclaim=*/true);
  BundleCleaner<BundledSkipList<KeyT, ValT>> cleaner(
      sl, std::chrono::milliseconds(0));  // most aggressive (Table 1 d=0)
  std::atomic<bool> stop{false};
  std::atomic<long> rq_failures{0};
  std::thread rq_thread([&] {
    std::vector<std::pair<KeyT, ValT>> out;
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      KeyT lo = 1 + static_cast<KeyT>(rng.next_range(900));
      sl.range_query(3, lo, lo + 50, out);
      if (!testutil::sorted_in_range(out, lo, lo + 50)) rq_failures++;
    }
  });
  testutil::run_threads(2, [&](int tid) {
    Xoshiro256 rng(tid + 8);
    for (int i = 0; i < 8000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(1000));
      if (rng.next_range(2) == 0)
        sl.insert(tid, k, k);
      else
        sl.remove(tid, k);
    }
  });
  stop = true;
  rq_thread.join();
  cleaner.stop();
  EXPECT_EQ(rq_failures.load(), 0);
  EXPECT_TRUE(sl.check_invariants());
  // On a fast run the churn can finish before the cleaner's first pass
  // lands; the deterministic claim is that the stale entries are reclaimed
  // *somewhere* — by the cleaner while running, or by one quiescent pass now.
  const size_t direct = sl.prune_bundles(BundleCleaner<
      BundledSkipList<KeyT, ValT>>::kCleanerTid);
  EXPECT_GT(cleaner.entries_reclaimed() + direct, 0u);
}

TEST(Cleaner, CitrusBundlesPrunedUnderChurn) {
  BundledCitrus<KeyT, ValT> ct(1, /*reclaim=*/true);
  for (KeyT k = 1; k <= 400; ++k) ct.insert(0, k * 7 % 401 + 1, k);
  {
    BundleCleaner<BundledCitrus<KeyT, ValT>> cleaner(
        ct, std::chrono::milliseconds(1));
    testutil::run_threads(2, [&](int tid) {
      Xoshiro256 rng(tid + 77);
      for (int i = 0; i < 4000; ++i) {
        KeyT k = 1 + static_cast<KeyT>(rng.next_range(400));
        if (rng.next_range(2) == 0)
          ct.insert(tid, k, k);
        else
          ct.remove(tid, k);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(ct.check_invariants());
  // Quiescent cleanup: one pass with no active queries leaves one entry
  // per live bundle.
  ct.prune_bundles(kMaxThreads - 1);
  size_t live_bundles = 2 * (ct.size_slow() + 1);  // two per node + root
  EXPECT_EQ(ct.total_bundle_entries(), live_bundles);
}

TEST(Ebr, NodesActuallyFreedUnderReclaimingChurn) {
  BundledList<KeyT, ValT> list(1, /*reclaim=*/true);
  testutil::run_threads(2, [&](int tid) {
    for (int round = 0; round < 40; ++round) {
      for (KeyT k = 1; k <= 50; ++k) list.insert(tid, k * 2 + tid, k);
      for (KeyT k = 1; k <= 50; ++k) list.remove(tid, k * 2 + tid);
    }
  });
  EXPECT_GT(list.ebr().freed(), 0u);
  EXPECT_TRUE(list.check_invariants());
}

TEST(Ebr, LeakyModeParksRemovedNodesUntilDestruction) {
  // With reclaim=false (the paper's benchmark mode) removed nodes are
  // retired but never freed during the run.
  BundledList<KeyT, ValT> list(1, /*reclaim=*/false);
  for (KeyT k = 1; k <= 100; ++k) list.insert(0, k, k);
  for (KeyT k = 1; k <= 100; ++k) list.remove(0, k);
  EXPECT_EQ(list.ebr().retired(), 100u);
  EXPECT_EQ(list.ebr().freed(), 0u);
}

TEST(EbrRq, LimboListIsPrunedOnceQueriesFinish) {
  EbrRqListSet list;
  for (KeyT k = 1; k <= 400; ++k) list.insert(0, k, k);
  for (KeyT k = 1; k <= 400; ++k) list.remove(0, k);
  // Another burst triggers periodic pruning with no active queries.
  for (int round = 0; round < 4; ++round) {
    for (KeyT k = 1; k <= 200; ++k) list.insert(0, k, k);
    for (KeyT k = 1; k <= 200; ++k) list.remove(0, k);
  }
  EXPECT_LT(list.provider().limbo_size(), 400u)
      << "limbo list grew without bound";
}

TEST(EbrRq, QueriesScanLimboNodes) {
  EbrRqLfListSet list;
  for (KeyT k = 1; k <= 50; ++k) list.insert(0, k, k);
  for (KeyT k = 1; k <= 50; k += 2) list.remove(0, k);
  std::vector<std::pair<KeyT, ValT>> out;
  const uint64_t before = list.provider().limbo_nodes_checked();
  list.range_query(0, 1, 50, out);
  EXPECT_EQ(out.size(), 25u);
  EXPECT_GT(list.provider().limbo_nodes_checked(), before)
      << "range query did not consult the limbo lists";
}

TEST(RelaxedTimestamps, StillProduceSaneSnapshotsQuiescently) {
  // With T=8, updates advance the clock rarely; quiescent range queries
  // must still return exactly the current set (freshness is only relaxed
  // *during* concurrency).
  BundledSkipList<KeyT, ValT> sl(/*relax_threshold=*/8);
  for (KeyT k = 1; k <= 128; ++k) sl.insert(0, k, k);
  // Force the clock forward so the last inserts become observable even
  // under relaxation (the paper's T=inf variant reads the freshest entry
  // instead; see fig5 bench).
  sl.global_timestamp().advance();
  std::vector<std::pair<KeyT, ValT>> out;
  EXPECT_EQ(sl.range_query(0, 1, 128, out), 128u);
  EXPECT_TRUE(sl.check_invariants());
}

}  // namespace
}  // namespace bref
