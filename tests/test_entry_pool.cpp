// The bundle-entry pool (core/entry_pool.h): allocation-freedom of the
// steady-state update hot path, recycle routing (EBR drain -> owner
// inbox), the malloc-bypass ablation mode, and — under ASan, where pooled
// free entries are poisoned — that recycled entries are never handed out
// while a reader could still reach them.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/bundle.h"
#include "core/bundle_cleaner.h"
#include "core/entry_pool.h"
#include "test_util.h"

namespace bref {
namespace {

struct FakeNode {
  int id;
};
using FakeEntry = BundleEntry<FakeNode>;

TEST(EntryLayout, TsAndNextShareOneCacheLine) {
  // The tentpole's layout claim: 32-byte entries tile cache lines exactly,
  // so the two fields a dereference touches per hop never straddle.
  EXPECT_EQ(sizeof(FakeEntry), 32u);
  EXPECT_EQ(alignof(FakeEntry), 32u);
  EXPECT_EQ(offsetof(FakeEntry, ts) / kCacheLine,
            offsetof(FakeEntry, next) / kCacheLine);
}

TEST(EntryPool, RemoteFreeRoutesToOwnerInbox) {
  auto& pool = EntryPool<FakeEntry>::instance();
  pool.set_pooling_enabled(true);
  FakeEntry* e = pool.acquire(7);
  ASSERT_EQ(e->pool_tid, 7);
  // Release from a different thread: the entry must come back to slot 7's
  // inbox, not to the releasing thread's slot.
  std::thread([e] { EntryPool<FakeEntry>::release(e); }).join();
  EntryPoolStats s = pool.stats();
  EXPECT_GE(s.recycled, 1u);
  // Slot 7 serves its local slab remainder first, then drains the inbox;
  // `e` must resurface from slot 7 within one slab's worth of pops (and
  // from no other slot, since releases route by the entry's own tag).
  bool resurfaced = false;
  std::vector<FakeEntry*> held;
  for (size_t i = 0; i < EntryPool<FakeEntry>::kSlabEntries + 2; ++i) {
    FakeEntry* got = pool.acquire(7);
    EXPECT_EQ(got->pool_tid, 7);
    held.push_back(got);
    if (got == e) {
      resurfaced = true;
      break;
    }
  }
  EXPECT_TRUE(resurfaced);
  for (FakeEntry* h : held) EntryPool<FakeEntry>::release(h);
}

TEST(EntryPool, MallocBypassTagsAndRoundTrips) {
  auto& pool = EntryPool<FakeEntry>::instance();
  pool.set_pooling_enabled(false);
  FakeEntry* e = pool.acquire(0);
  EXPECT_EQ(e->pool_tid, kPoolMalloced);
  EntryPool<FakeEntry>::release(e);  // must route to delete, not an inbox
  pool.set_pooling_enabled(true);
  // Mixed-origin chains: a bundle built under bypass then grown pooled
  // tears down cleanly (each entry remembers its origin).
  pool.set_pooling_enabled(false);
  {
    Bundle<FakeNode> b;
    FakeNode n{0};
    b.init(&n, 0);
    Bundle<FakeNode>::finalize(b.prepare(0, &n), 1);
    pool.set_pooling_enabled(true);
    Bundle<FakeNode>::finalize(b.prepare(0, &n), 2);
    EXPECT_EQ(b.size(), 3u);
  }
  pool.set_pooling_enabled(true);
}

// The acceptance regression: once warm, a churning structure whose pruned
// entries recycle through EBR performs *zero* pool misses — the bundle hot
// path stops touching the allocator entirely. Run single-threaded with an
// explicit prune/quiesce cadence so the recycle pipeline (chain -> EBR bag
// -> owner inbox) drains deterministically each round: with concurrent
// threads on an oversubscribed machine, epoch advance — and therefore the
// pool capacity needed to ride out the recycle latency — is at the mercy
// of the OS scheduler, which is exactly what a regression test must not
// depend on. (The concurrent path is exercised by the churn test below
// and measured by bench/ablation_entry_path.)
TEST(EntryPool, SteadyStateUpdatePathHasZeroPoolMisses) {
  using SL = BundledSkipList<KeyT, ValT>;
  SL::set_entry_pooling(true);
  SL sl(1, /*reclaim=*/true);
  constexpr int kCleanerTid = kMaxThreads - 1;
  Xoshiro256 rng(41);
  auto round = [&] {
    for (int i = 0; i < 200; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(512));
      if (rng.next_range(2) == 0)
        sl.insert(0, k, k);
      else
        sl.remove(0, k);
    }
    sl.prune_bundles(kCleanerTid);
    // Nothing is pinned between operations, so each quiesce() advances the
    // epoch; two rounds ripen and drain every bag (pruned entries reach
    // the owner's inbox, removed nodes recycle their chains on delete).
    sl.ebr().quiesce(kCleanerTid);
    sl.ebr().quiesce(0);
  };
  for (int r = 0; r < 30; ++r) round();  // warm-up: size the pools
  const EntryPoolStats warm = sl.entry_pool_stats();
  ASSERT_GT(warm.hits + warm.misses, 0u);
  for (int r = 0; r < 60; ++r) round();  // steady state
  EntryPoolStats steady = sl.entry_pool_stats();
  steady -= warm;
  EXPECT_EQ(steady.misses, 0u)
      << "steady-state updates hit the allocator " << steady.misses
      << " times (hits=" << steady.hits << ")";
  EXPECT_GT(steady.hits, 0u);
  EXPECT_GT(steady.recycled, 0u) << "no entry was ever recycled";
  EXPECT_TRUE(sl.check_invariants());
}

// Churn + aggressive cleaner + concurrent range queries. Entries recycle
// at the highest rate the cleaner can drive while readers walk the very
// chains being pruned; EBR's grace period is the only thing making that
// safe. Under ASan the pool poisons a free entry's (ptr, ts) words, so an
// entry recycled while still reachable faults immediately instead of
// feeding a reader a stale-but-plausible timestamp; in all builds the
// snapshot validation catches corruption after the fact.
TEST(EntryPool, RecycledEntriesNeverReachableByActiveReaders) {
  using SL = BundledSkipList<KeyT, ValT>;
  SL::set_entry_pooling(true);
  SL sl(1, /*reclaim=*/true);
  for (KeyT k = 1; k <= 400; ++k) sl.insert(0, k * 2, k);
  BundleCleaner<SL> cleaner(sl, std::chrono::milliseconds(0));
  std::atomic<bool> stop{false};
  std::atomic<long> rq_failures{0};
  constexpr int kUpdaters = 2;
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      const int tid = kUpdaters + r;
      std::vector<std::pair<KeyT, ValT>> out;
      Xoshiro256 rng(100 + r);
      while (!stop.load(std::memory_order_acquire)) {
        KeyT lo = 1 + static_cast<KeyT>(rng.next_range(700));
        sl.range_query(tid, lo, lo + 60, out);
        if (!testutil::sorted_in_range(out, lo, lo + 60)) rq_failures++;
      }
    });
  }
  testutil::run_threads(kUpdaters, [&](int tid) {
    Xoshiro256 rng(7 + tid);
    for (int i = 0; i < 12000; ++i) {
      KeyT k = 1 + static_cast<KeyT>(rng.next_range(800));
      if (rng.next_range(2) == 0)
        sl.insert(tid, k, k);
      else
        sl.remove(tid, k);
    }
  });
  stop = true;
  for (auto& t : readers) t.join();
  cleaner.stop();
  EXPECT_EQ(rq_failures.load(), 0);
  EXPECT_GT(cleaner.pool_stats().recycled, 0u);
  EXPECT_TRUE(sl.check_invariants());
}

// ---------------------------------------------------------------------------
// Named slab arenas (ISSUE 9): shard-local placement with home routing.
// ---------------------------------------------------------------------------

TEST(EntryPoolArena, RegistryFindsOrCreatesByName) {
  auto& reg = ArenaRegistry::instance();
  const int a = reg.acquire("test-arena-reuse");
  ASSERT_GT(a, 0);  // arena 0 is the unnamed default
  EXPECT_EQ(reg.acquire("test-arena-reuse"), a);  // same name -> same arena
  const int b = reg.acquire("test-arena-other");
  EXPECT_NE(b, a);
  EXPECT_EQ(reg.name(a), "test-arena-reuse");
  // Out of scope, the thread is back on the default arena; bogus ids clamp.
  EXPECT_EQ(current_arena(), 0);
  {
    ArenaScope bad(kMaxArenas + 5);
    EXPECT_EQ(current_arena(), 0);
  }
}

TEST(EntryPoolArena, ScopedAcquireTagsOwnerAndRoutesReleaseHome) {
  auto& pool = EntryPool<FakeEntry>::instance();
  pool.set_pooling_enabled(true);
  const int arena = ArenaRegistry::instance().acquire("test-arena-route");
  ASSERT_GT(arena, 0);
  FakeEntry* e = nullptr;
  {
    ArenaScope scope(arena);
    EXPECT_EQ(current_arena(), arena);
    e = pool.acquire(7);
    // The owner tag encodes (arena, tid); arena 0 keeps tag == tid so the
    // pre-arena layout (and every old assertion on pool_tid) still holds.
    ASSERT_EQ(e->pool_tid, pool_owner_tag(arena, 7));
  }
  EXPECT_EQ(current_arena(), 0);
  // Release from another thread with NO scope: the entry's own tag — not
  // the releasing thread's arena — must route it to the home slot.
  std::thread([e] { EntryPool<FakeEntry>::release(e); }).join();
  {
    ArenaScope scope(arena);
    bool resurfaced = false;
    std::vector<FakeEntry*> held;
    for (size_t i = 0; i < EntryPool<FakeEntry>::kSlabEntries + 2; ++i) {
      FakeEntry* got = pool.acquire(7);
      EXPECT_EQ(got->pool_tid, pool_owner_tag(arena, 7));
      held.push_back(got);
      if (got == e) {
        resurfaced = true;
        break;
      }
    }
    EXPECT_TRUE(resurfaced);
    for (FakeEntry* h : held) EntryPool<FakeEntry>::release(h);
  }
  // Per-arena accounting: the arena allocated at least one slab of its
  // own, and the global roll-up covers it.
  const EntryPoolStats as = pool.arena_stats(arena);
  EXPECT_GE(as.slabs, 1u);
  EXPECT_GT(as.hits + as.misses, 0u);
  EXPECT_GE(pool.stats().slabs, as.slabs);
}

}  // namespace
}  // namespace bref
