// ShardedSet + MaintenanceService tests (src/shard/).
//
// Pins down the shard layer's contracts:
//   * range partitioning is total over KeyT (clamping), routing keeps every
//     key in its shard, and quiescent results match a reference model;
//   * a coordinated cross-shard range query over bundled shards acquires
//     exactly ONE shared timestamp and returns a single-instant snapshot —
//     audited under 8-thread churn with the timestamp-aware Wing–Gong
//     checker (coordinated queries must linearize in @ts order);
//   * non-coordinated inner families degrade gracefully to a per-shard
//     merge that advertises (and stamps) nothing it cannot honor;
//   * the registry carries the Sharded-Bundle-* configurations with derived
//     capabilities, so they ride every capability-driven sweep;
//   * the MaintenanceService drives per-shard bundle pruning and the
//     EBR-RQ limbo drain without caller cooperation (the ROADMAP's
//     "nothing calls flush_limbo unprompted" item), survives start/stop
//     cycles under load, and backs off when idle.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/set.h"
#include "shard/maintenance.h"
#include "test_util.h"
#include "validation/history.h"
#include "validation/wing_gong.h"

namespace bref {
namespace {

ShardOptions small_range(size_t shards, KeyT lo, KeyT hi,
                         SetOptions inner = {}) {
  ShardOptions so;
  so.shards = shards;
  so.key_lo = lo;
  so.key_hi = hi;
  so.inner = inner;
  return so;
}

// ---------------------------------------------------------------------------
// Partitioning and routing.
// ---------------------------------------------------------------------------

TEST(ShardPartition, RoutingIsTotalAndOrderPreserving) {
  ShardedSet s("Bundle-list", small_range(4, 0, 100));
  // Uniform split of [0, 100] into 4: width 25.
  EXPECT_EQ(s.num_shards(), 4u);
  EXPECT_EQ(s.shard_index(0), 0u);
  EXPECT_EQ(s.shard_index(24), 0u);
  EXPECT_EQ(s.shard_index(25), 1u);
  EXPECT_EQ(s.shard_index(74), 2u);
  EXPECT_EQ(s.shard_index(75), 3u);
  EXPECT_EQ(s.shard_index(100), 3u);
  // Total over KeyT: out-of-range keys clamp to the edge shards.
  EXPECT_EQ(s.shard_index(-5000), 0u);
  EXPECT_EQ(s.shard_index(5000), 3u);
  // Order-preserving: shard index is monotone in the key.
  size_t prev = 0;
  for (KeyT k = -10; k <= 110; ++k) {
    const size_t idx = s.shard_index(k);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(ShardPartition, FullDomainDefaultSplitsAroundZero) {
  // The registry-created configuration partitions all of KeyT; keys near
  // zero land in a middle shard and the extremes clamp to the edges.
  Set s = Set::create("Sharded-Bundle-skiplist");
  auto& sharded = dynamic_cast<ShardedSet&>(s.impl());
  EXPECT_EQ(sharded.num_shards(), 4u);
  EXPECT_EQ(sharded.shard_index(std::numeric_limits<KeyT>::min() + 1), 0u);
  EXPECT_EQ(sharded.shard_index(std::numeric_limits<KeyT>::max() - 1), 3u);
  EXPECT_EQ(sharded.shard_index(0), 2u);
}

TEST(ShardPartition, OpsMatchModelAndKeysStayInTheirShards) {
  ShardedSet s("Bundle-skiplist", small_range(4, 0, 400));
  std::map<KeyT, ValT> model;
  Xoshiro256 rng(71);
  ThreadSession sess(s, 0);
  for (int i = 0; i < 2000; ++i) {
    const KeyT k = 1 + static_cast<KeyT>(rng.next_range(399));
    switch (rng.next_range(3)) {
      case 0:
        EXPECT_EQ(sess.remove(k), model.erase(k) > 0);
        break;
      case 1: {
        const bool ok = sess.insert(k, k * 7);
        EXPECT_EQ(ok, model.emplace(k, k * 7).second);
        break;
      }
      default: {
        ValT v = 0;
        const auto it = model.find(k);
        EXPECT_EQ(sess.contains(k, &v), it != model.end());
        if (it != model.end()) EXPECT_EQ(v, it->second);
        break;
      }
    }
  }
  EXPECT_TRUE(testutil::matches_model(s, model));
  EXPECT_TRUE(s.check_invariants());  // includes partition discipline
  EXPECT_EQ(s.size_slow(), model.size());
  // Every shard holds only its own range (spot-check via shard()).
  for (size_t i = 0; i < s.num_shards(); ++i)
    for (const auto& [k, v] : s.shard(i).to_vector())
      EXPECT_EQ(s.shard_index(k), i);
}

TEST(ShardPartition, PerShardPoolsSupportPartitionAwareBulkLoad) {
  // One loader thread per shard, each driving its own shard directly
  // through that shard's SessionPool with only the keys it owns — the
  // bulk-load pattern; the routing invariant must hold afterwards.
  ShardedSet s("Bundle-list", small_range(4, 0, 400));
  testutil::run_threads(4, [&](int i) {
    ThreadSession sess = s.shard_pool(static_cast<size_t>(i)).session();
    for (KeyT k = 1; k <= 400; ++k)
      if (s.shard_index(k) == static_cast<size_t>(i)) sess.insert(k, k);
  });
  EXPECT_EQ(s.size_slow(), 400u);
  EXPECT_TRUE(s.check_invariants());
  ThreadSession q(s, 0);
  RangeSnapshot snap;
  EXPECT_EQ(q.range_query(1, 400, snap), 400u);
  EXPECT_TRUE(snap.has_timestamp());
}

// ---------------------------------------------------------------------------
// Registry surface.
// ---------------------------------------------------------------------------

TEST(ShardRegistry, ShardedBundleConfigurationsAreRegisteredWithDerivedCaps) {
  for (const char* structure : {"list", "skiplist", "citrus"}) {
    const std::string name = std::string("Sharded-Bundle-") + structure;
    SCOPED_TRACE(name);
    ImplDescriptor d;
    ASSERT_TRUE(ImplRegistry::instance().find(name, &d));
    EXPECT_FALSE(d.builtin);  // extension, not one of the paper's 18
    EXPECT_TRUE(d.caps.coordinated_rq);
    EXPECT_TRUE(d.caps.linearizable_rq);
    EXPECT_TRUE(d.caps.rq_timestamp);
    EXPECT_TRUE(d.caps.relaxation);   // forwarded to every shard
    EXPECT_TRUE(d.caps.reclamation);  // forwarded to every shard
    Set s = Set::create(name);
    EXPECT_EQ(s.name(), name);
    EXPECT_STREQ(s.technique(), "Sharded");
    EXPECT_EQ(std::string("Bundle-") + structure, s.structure());
    // The descriptor's compile-time caps (builtin_shards.h sharded_caps)
    // and the instance's runtime derivation (ShardedSet::capabilities)
    // are two implementations of one rule; pin them together so neither
    // can drift when a capability field or the coordination gate changes.
    const Capabilities inst = s.capabilities();
    EXPECT_EQ(inst.linearizable_rq, d.caps.linearizable_rq);
    EXPECT_EQ(inst.relaxation, d.caps.relaxation);
    EXPECT_EQ(inst.reclamation, d.caps.reclamation);
    EXPECT_EQ(inst.rq_timestamp, d.caps.rq_timestamp);
    EXPECT_EQ(inst.coordinated_rq, d.caps.coordinated_rq);
    auto sess = s.session(0);
    EXPECT_TRUE(sess.insert(5, 50));
    EXPECT_EQ(sess.range_query(0, 10).size(), 1u);
  }
  // Knob forwarding goes down the validated registry path per shard.
  Set relaxed =
      Set::create("Sharded-Bundle-list", SetOptions{.relax_threshold = 5});
  EXPECT_TRUE(relaxed.capabilities().relaxation);
}

// ---------------------------------------------------------------------------
// Coordinated cross-shard range queries.
// ---------------------------------------------------------------------------

TEST(CoordinatedRq, CrossShardQueryAcquiresExactlyOneTimestamp) {
  ShardedSet s("Bundle-list", small_range(4, 0, 100));
  ASSERT_TRUE(s.coordinated());
  ThreadSession sess(s, 0);
  for (KeyT k = 1; k <= 99; ++k) sess.insert(k, k);
  RangeSnapshot snap;
  constexpr int kQueries = 25;
  for (int i = 0; i < kQueries; ++i) {
    // Spans all four shards -> the coordinated path.
    ASSERT_EQ(sess.range_query(1, 99, snap), 99u);
    ASSERT_TRUE(snap.has_timestamp());
    // 99 inserts advanced the shared clock to 99; read-only queries must
    // observe exactly that instant, never a per-shard composite.
    EXPECT_EQ(snap.timestamp(), 99u);
  }
  const ShardedSetStats st = s.stats();
  EXPECT_EQ(st.coordinated_rqs, static_cast<uint64_t>(kQueries));
  // THE acceptance property: one clock acquisition per coordinated query,
  // not one per overlapping shard.
  EXPECT_EQ(st.timestamps_acquired, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(st.fallback_rqs, 0u);
  // Full-span queries pin (and announce in) every shard exactly once.
  EXPECT_EQ(st.coordinated_shards_pinned, static_cast<uint64_t>(4 * kQueries));
}

TEST(CoordinatedRq, PinElisionPaysCoordinationOnlyForOverlappingShards) {
  // ISSUE 9 pin-elision: shards provably missing the query range pay no
  // announce store and no epoch pin. [0,100] over 4 shards -> width 25.
  ShardedSet s("Bundle-list", small_range(4, 0, 100));
  ThreadSession sess(s, 0);
  for (KeyT k = 1; k <= 99; ++k) sess.insert(k, k);
  RangeSnapshot snap;
  // Straddles exactly the shard 1 / shard 2 boundary: 2 of 4 shards.
  EXPECT_EQ(sess.range_query(30, 60, snap), 31u);
  ShardedSetStats st = s.stats();
  EXPECT_EQ(st.coordinated_rqs, 1u);
  EXPECT_EQ(st.coordinated_shards_pinned, 2u)
      << "shards outside [lo,hi] must not be pinned or announced in";
  // Three shards: [30, 80] covers indices 1..3.
  EXPECT_EQ(sess.range_query(30, 80, snap), 51u);
  st = s.stats();
  EXPECT_EQ(st.coordinated_rqs, 2u);
  EXPECT_EQ(st.coordinated_shards_pinned, 5u);
}

TEST(CoordinatedRq, SingleShardFastPathDelegatesWholeQuery) {
  ShardedSet s("Bundle-skiplist", small_range(4, 0, 100));
  ThreadSession sess(s, 0);
  for (KeyT k = 1; k <= 99; ++k) sess.insert(k, k);
  RangeSnapshot snap;
  EXPECT_EQ(sess.range_query(1, 20, snap), 20u);  // inside shard 0
  EXPECT_TRUE(snap.has_timestamp());              // shared-clock stamp
  const ShardedSetStats st = s.stats();
  EXPECT_EQ(st.single_shard_rqs, 1u);
  EXPECT_EQ(st.coordinated_rqs, 0u);
  // The ISSUE 9 zero-coordination assertion: a single-shard-resident RQ
  // devolves to exactly the unsharded fast path — no shared-clock
  // acquisition, no cross-shard announce, no extra epoch pins.
  EXPECT_EQ(st.timestamps_acquired, 0u);
  EXPECT_EQ(st.coordinated_shards_pinned, 0u);
}

TEST(CoordinatedRq, TimestampsOrderSnapshotsAgainstUpdatesAcrossShards) {
  Set s = Set::create("Sharded-Bundle-citrus");
  auto sess = s.session(0);
  RangeSnapshot a, b;
  sess.insert(-1000, 1);  // distinct shards under the full-domain split
  sess.insert(1000, 2);
  sess.range_query(-5000, 5000, a);
  sess.insert(2000, 3);  // advances the one shared clock
  sess.range_query(-5000, 5000, b);
  ASSERT_TRUE(a.has_timestamp());
  ASSERT_TRUE(b.has_timestamp());
  EXPECT_LT(a.timestamp(), b.timestamp());
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
}

// The acceptance audit: a coordinated cross-shard range query over 4
// bundled shards, its RangeSnapshot::timestamp()-stamped histories checked
// with the timestamp-aware Wing–Gong search under 8-thread churn.
TEST(CoordinatedRq, ChurnHistoriesPassTimestampedWingGongAudit) {
  constexpr int kThreads = 8;
  ShardedSet ds("Bundle-list", small_range(4, 0, 8));
  ASSERT_TRUE(ds.coordinated());
  for (int burst = 0; burst < 12; ++burst) {
    validation::History pre;
    for (auto& [k, v] : ds.to_vector()) {
      validation::Op op;
      op.kind = validation::OpKind::kInsert;
      op.key = k;
      op.val = v;
      op.result = true;
      op.invoke_ns = 2 * pre.size();
      op.response_ns = 2 * pre.size() + 1;
      pre.push_back(op);
    }
    std::vector<validation::ThreadLog> logs;
    for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);
    testutil::run_threads(kThreads, [&](int t) {
      ThreadSession s(ds, t);
      Xoshiro256 rng(burst * 131 + t + 1);
      RangeSnapshot out;
      for (int i = 0; i < 3; ++i) {
        // Keys 1..7 spread over all four shards (width 2).
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(7));
        const uint64_t t0 = validation::now_ns();
        switch (rng.next_range(4)) {
          case 0: {
            const bool r = s.insert(k, burst * 100 + t * 10 + i);
            logs[t].record_point(validation::OpKind::kInsert, k,
                                 burst * 100 + t * 10 + i, r, t0,
                                 validation::now_ns());
            break;
          }
          case 1: {
            const bool r = s.remove(k);
            logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                                 validation::now_ns());
            break;
          }
          case 2: {
            ValT v = 0;
            const bool r = s.contains(k, &v);
            logs[t].record_point(validation::OpKind::kContains, k, r ? v : 0,
                                 r, t0, validation::now_ns());
            break;
          }
          default: {
            // Spans every shard -> coordinated single-timestamp snapshot.
            s.range_query(1, 8, out);
            logs[t].record_rq(out, t0, validation::now_ns());
            break;
          }
        }
      }
    });
    validation::History h = validation::merge(logs);
    h.insert(h.end(), pre.begin(), pre.end());
    // The stamped queries must linearize in @ts order on top of plain
    // linearizability — one shared clock makes the stamps comparable.
    auto verdict = validation::check_linearizable_with_ts(h);
    ASSERT_TRUE(verdict.linearizable)
        << "burst " << burst << ": " << verdict.message;
  }
  // The audit must actually have exercised the coordinated path.
  EXPECT_GT(ds.stats().coordinated_rqs, 0u);
  EXPECT_EQ(ds.stats().fallback_rqs, 0u);
  EXPECT_EQ(ds.stats().timestamps_acquired, ds.stats().coordinated_rqs);
}

// The ISSUE 9 audit variant: 8-thread churn whose range queries mix all
// three routing classes — single-shard (zero-coordination fast path),
// partial-span (batched announce over a pin-elided subset), and full-span.
// Every stamped snapshot, regardless of how many shards coordinated, must
// linearize in @ts order on the one shared clock.
TEST(CoordinatedRq, MixedSpanChurnAuditExercisesBatchedAnnounceAndElision) {
  constexpr int kThreads = 8;
  ShardedSet ds("Bundle-list", small_range(4, 0, 8));
  ASSERT_TRUE(ds.coordinated());
  for (int burst = 0; burst < 10; ++burst) {
    validation::History pre;
    for (auto& [k, v] : ds.to_vector()) {
      validation::Op op;
      op.kind = validation::OpKind::kInsert;
      op.key = k;
      op.val = v;
      op.result = true;
      op.invoke_ns = 2 * pre.size();
      op.response_ns = 2 * pre.size() + 1;
      pre.push_back(op);
    }
    std::vector<validation::ThreadLog> logs;
    for (int t = 0; t < kThreads; ++t) logs.emplace_back(t);
    testutil::run_threads(kThreads, [&](int t) {
      ThreadSession s(ds, t);
      Xoshiro256 rng(burst * 977 + t + 1);
      RangeSnapshot out;
      for (int i = 0; i < 3; ++i) {
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(7));
        const uint64_t t0 = validation::now_ns();
        switch (rng.next_range(5)) {
          case 0: {
            const bool r = s.insert(k, burst * 100 + t * 10 + i);
            logs[t].record_point(validation::OpKind::kInsert, k,
                                 burst * 100 + t * 10 + i, r, t0,
                                 validation::now_ns());
            break;
          }
          case 1: {
            const bool r = s.remove(k);
            logs[t].record_point(validation::OpKind::kRemove, k, 0, r, t0,
                                 validation::now_ns());
            break;
          }
          case 2:  // keys 0-1 live in shard 0 -> single-shard fast path
            s.range_query(0, 1, out);
            logs[t].record_rq(out, t0, validation::now_ns());
            break;
          case 3:  // keys 2-5 span shards 1-2 -> elided batched announce
            s.range_query(2, 5, out);
            logs[t].record_rq(out, t0, validation::now_ns());
            break;
          default:  // full span -> all four shards coordinate
            s.range_query(1, 8, out);
            logs[t].record_rq(out, t0, validation::now_ns());
            break;
        }
      }
    });
    validation::History h = validation::merge(logs);
    h.insert(h.end(), pre.begin(), pre.end());
    auto verdict = validation::check_linearizable_with_ts(h);
    ASSERT_TRUE(verdict.linearizable)
        << "burst " << burst << ": " << verdict.message;
  }
  const ShardedSetStats st = ds.stats();
  EXPECT_GT(st.single_shard_rqs, 0u);
  EXPECT_GT(st.coordinated_rqs, 0u);
  EXPECT_EQ(st.fallback_rqs, 0u);
  EXPECT_EQ(st.timestamps_acquired, st.coordinated_rqs);
  // Elision engaged: strictly fewer pins than coordinated_rqs * nshards
  // (the 2-shard spans), never fewer than 2 per coordinated query.
  EXPECT_LT(st.coordinated_shards_pinned, 4 * st.coordinated_rqs);
  EXPECT_GE(st.coordinated_shards_pinned, 2 * st.coordinated_rqs);
}

// ---------------------------------------------------------------------------
// Fallback (non-coordinated inner families).
// ---------------------------------------------------------------------------

TEST(FallbackRq, NonCoordinatedFamilyMergesPerShardWithoutClaims) {
  // EBR-RQ reports timestamps but owns no shareable clock, so a sharded
  // set over it cannot coordinate: multi-shard queries merge per shard and
  // every cross-shard atomicity claim is dropped from the capabilities.
  ShardedSet s("EBR-RQ-list", small_range(4, 0, 100));
  EXPECT_FALSE(s.coordinated());
  const Capabilities caps = s.capabilities();
  EXPECT_FALSE(caps.coordinated_rq);
  EXPECT_FALSE(caps.linearizable_rq);
  EXPECT_FALSE(caps.rq_timestamp);
  ThreadSession sess(s, 0);
  for (KeyT k = 1; k <= 99; ++k) sess.insert(k, k * 2);
  RangeSnapshot snap;
  // Quiescent content is still exact, merged in key order.
  EXPECT_EQ(sess.range_query(1, 99, snap), 99u);
  EXPECT_FALSE(snap.has_timestamp());
  for (size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  // Single-shard delegation strips the inner stamp: per-shard clocks are
  // not comparable, so honoring rq_timestamp=false beats leaking one.
  EXPECT_EQ(sess.range_query(1, 20, snap), 20u);
  EXPECT_FALSE(snap.has_timestamp());
  const ShardedSetStats st = s.stats();
  EXPECT_EQ(st.fallback_rqs, 1u);
  EXPECT_EQ(st.single_shard_rqs, 1u);
  EXPECT_EQ(st.timestamps_acquired, 0u);
}

// ---------------------------------------------------------------------------
// MaintenanceService.
// ---------------------------------------------------------------------------

TEST(Maintenance, PerShardWorkersPruneBundlesUnderChurn) {
  ShardedSet s("Bundle-list",
               small_range(4, 0, 400, SetOptions{.reclaim = true}));
  MaintenanceService svc(s, MaintenanceOptions{
                                .interval = std::chrono::milliseconds(1)});
  EXPECT_EQ(svc.workers(), 4u);  // one per shard
  EXPECT_FALSE(svc.running());
  svc.start();
  EXPECT_TRUE(svc.running());
  // Churn on pinned ids 0..3 (the workers occupy dedicated top slots).
  testutil::run_threads(4, [&](int tid) {
    ThreadSession sess(s, tid);
    Xoshiro256 rng(17 + tid);
    RangeSnapshot out;
    for (int i = 0; i < 4000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(399));
      if (rng.next_range(4) == 0)
        sess.range_query(k, k + 30, out);
      else if (rng.next_range(2) == 0)
        sess.insert(k, k);
      else
        sess.remove(k);
    }
  });
  // Give the service one more cadence to reconcile the tail, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.stop();
  EXPECT_FALSE(svc.running());
  uint64_t total_pruned = 0;
  for (size_t i = 0; i < svc.workers(); ++i) {
    const ShardMaintenanceStats st = svc.stats(i);
    EXPECT_GT(st.passes, 0u) << "worker " << i << " never ran";
    total_pruned += st.bundle_entries_pruned;
  }
  EXPECT_GT(total_pruned, 0u) << "churn must leave prunable bundle entries";
  EXPECT_TRUE(s.check_invariants());
  // Restartable: a second cycle under load works.
  svc.start();
  testutil::run_threads(2, [&](int tid) {
    ThreadSession sess(s, tid);
    for (KeyT k = 1; k <= 200; ++k) {
      sess.insert(k, k);
      sess.remove(k);
    }
  });
  svc.stop();
  EXPECT_GT(svc.total().passes, 4u);
}

TEST(Maintenance, LimboStaysBoundedWithoutCallerCooperation) {
  // The ROADMAP item this service exists for: EBR-RQ strands up to
  // kPruneEvery-1 limbo nodes per quiet thread forever unless someone
  // calls flush_limbo — and before this service, nothing did unprompted.
  ShardedSet s("EBR-RQ-list", small_range(4, 0, 400));
  MaintenanceService svc(s, MaintenanceOptions{
                                .interval = std::chrono::milliseconds(1)});
  svc.start();
  testutil::run_threads(4, [&](int tid) {
    ThreadSession sess(s, tid);
    Xoshiro256 rng(41 + tid);
    for (int i = 0; i < 3000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(399));
      if (rng.next_range(2) == 0)
        sess.insert(k, k);
      else
        sess.remove(k);  // removed nodes park in the provider's limbo
    }
  });
  // Workers are quiescent and never flushed; the service alone must drain
  // the stranded tails. Poll with a generous deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (s.maintenance_backlog() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  svc.stop();
  EXPECT_EQ(s.maintenance_backlog(), 0u)
      << "stranded limbo must be drained without caller flushes";
  EXPECT_GT(svc.total().limbo_flushed, 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Maintenance, PooledTidModeComposesWithPooledSessions) {
  // Application deployment shape: workload threads AND maintenance workers
  // all draw ids from the global registry (no pinned ids anywhere).
  Set s = Set::create("Sharded-Bundle-skiplist", SetOptions{.reclaim = true});
  auto& sharded = dynamic_cast<ShardedSet&>(s.impl());
  MaintenanceService svc(sharded,
                         MaintenanceOptions{
                             .interval = std::chrono::milliseconds(1),
                             .pooled_tids = true});
  svc.start();
  testutil::run_pooled(s.impl(), 4, [&](ThreadSession& sess) {
    Xoshiro256 rng(7 + sess.tid());
    for (int i = 0; i < 1500; ++i) {
      const KeyT k = static_cast<KeyT>(rng.next_range(1000)) - 500;
      if (rng.next_range(2) == 0)
        sess.insert(k, k);
      else
        sess.remove(k);
    }
  });
  // The churn can outrun the first 1ms cadence; let the service take at
  // least one pass before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.stop();
  EXPECT_GT(svc.total().passes, 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Maintenance, AdaptiveRateBacksOffWhenIdle) {
  ShardedSet s("Bundle-list",
               small_range(2, 0, 100, SetOptions{.reclaim = true}));
  MaintenanceService svc(
      s, MaintenanceOptions{.interval = std::chrono::milliseconds(1),
                            .max_interval = std::chrono::milliseconds(8),
                            .adaptive = true});
  svc.start();
  // Nothing to do: passes must back off rather than spin at base rate.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  svc.stop();
  EXPECT_GT(svc.total().idle_backoffs, 0u);
}

TEST(Maintenance, BacklogWakeBoundsLimboHardWithoutPolling) {
  // ISSUE 9 hard-bound regression: interval polling disabled (interval 0),
  // backlog-driven wakeups only. The EBR-RQ park path signals the service
  // at backlog_wake items, so total limbo must stay near the threshold —
  // far below the ~kPruneEvery-per-(thread, shard) saw-tooth the inline
  // cadence alone would allow (2 threads x 4 shards x 127 > 1000).
  constexpr size_t kWake = 16;
  constexpr size_t kHardBound = 256;  // threshold + generous scheduler slack
  ShardedSet s("EBR-RQ-list", small_range(4, 0, 400));
  MaintenanceService svc(
      s, MaintenanceOptions{.interval = std::chrono::milliseconds(0),
                            .backlog_wake = kWake});
  svc.start();
  std::atomic<size_t> max_backlog{0};
  testutil::run_threads(2, [&](int tid) {
    ThreadSession sess(s, tid);
    Xoshiro256 rng(59 + tid);
    for (int i = 0; i < 8000; ++i) {
      const KeyT k = 1 + static_cast<KeyT>(rng.next_range(399));
      if (rng.next_range(2) == 0)
        sess.insert(k, k);
      else
        sess.remove(k);  // parks in limbo -> bumps the signal
      if (i % 8 == 0) {
        const size_t b = s.maintenance_backlog();
        size_t prev = max_backlog.load(std::memory_order_relaxed);
        while (b > prev && !max_backlog.compare_exchange_weak(
                               prev, b, std::memory_order_relaxed)) {
        }
      }
      // On an oversubscribed runner, give the worker a chance to take the
      // CPU once signalled; real deployments have a core for it.
      if (i % 16 == 0) std::this_thread::yield();
    }
  });
  // The sub-threshold tail needs no wakeup; anything at/over the
  // threshold must drain without a flush from us.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (s.maintenance_backlog() > kWake + 64 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.stop();
  EXPECT_LE(max_backlog.load(), kHardBound)
      << "limbo outran the backlog signal";
  EXPECT_LE(s.maintenance_backlog(), kWake + 64);
  const ShardMaintenanceStats t = svc.total();
  EXPECT_GT(t.passes, 0u);
  EXPECT_GT(t.backlog_wakeups, 0u);
  EXPECT_EQ(t.timer_wakeups, 0u) << "interval 0 must never tick a timer";
  EXPECT_TRUE(s.check_invariants());
}

TEST(Maintenance, IntervalZeroIdleServiceTakesZeroPasses) {
  // The satellite-1 regression: interval == 0 used to skip the wait and
  // hot-loop maintain(); it now means "block until signalled", so an idle
  // service takes zero passes and zero wakeups of either kind.
  ShardedSet s("Bundle-list",
               small_range(2, 0, 100, SetOptions{.reclaim = true}));
  MaintenanceService svc(
      s, MaintenanceOptions{.interval = std::chrono::milliseconds(0),
                            .backlog_wake = 8});
  svc.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  svc.stop();
  const ShardMaintenanceStats t = svc.total();
  EXPECT_EQ(t.passes, 0u) << "idle interval-0 worker must not spin";
  EXPECT_EQ(t.backlog_wakeups, 0u);
  EXPECT_EQ(t.timer_wakeups, 0u);
}

TEST(Maintenance, TypeErasedMaintainHookSumsShardDuties) {
  // ShardedSet::maintain forwards to every shard; for an EBR-RQ family it
  // drains limbo, reported per duty in MaintenanceWork.
  ShardedSet s("EBR-RQ-skiplist", small_range(4, 0, 200));
  ThreadSession sess(s, 0);
  for (KeyT k = 1; k <= 199; ++k) sess.insert(k, k);
  for (KeyT k = 1; k <= 199; ++k) sess.remove(k);
  ASSERT_GT(s.maintenance_backlog(), 0u);
  const MaintenanceWork w = s.maintain(0);
  EXPECT_GT(w.limbo_flushed, 0u);
  EXPECT_EQ(s.maintenance_backlog(), 0u);
  EXPECT_TRUE(w.epochs_quiesced);
}

}  // namespace
}  // namespace bref
