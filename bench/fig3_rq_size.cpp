// Figure 3: throughput relative to Unsafe for range-query lengths
// {1,10,50,100,250,500} under the 50-0-50 mix, for the skip list (top) and
// Citrus tree (bottom). Bars in the paper are grouped per length by
// competitor (EBR-RQ, EBR-RQ-LF, RLU, Bundle) and ordered by thread count;
// we print one block per length with a row per thread count.

#include <memory>

#include "harness.h"

namespace {

using namespace bref;
using namespace bref::bench;

template <typename BundleT, typename UnsafeT, typename EbrT, typename EbrLfT,
          typename RluT>
void run_family(const char* tag, const Config& base) {
  std::printf("\n=== Figure 3 (%s): relative throughput vs Unsafe, "
              "50-0-50 ===\n", tag);
  const int kSizes[6] = {1, 10, 50, 100, 250, 500};
  for (int size : kSizes) {
    Config cfg = base;
    cfg.u_pct = 50;
    cfg.c_pct = 0;
    cfg.rq_pct = 50;
    cfg.rq_size = size;
    std::printf("-- RQ size %d --\n", size);
    std::printf("%8s %10s %10s %10s %10s | rel: %9s %9s %9s %9s\n", "threads",
                "Unsafe", "EBR-RQ", "EBR-RQ-LF", "RLU", "EBR-RQ", "EBR-LF",
                "RLU", "Bundle");
    for (int threads : cfg.thread_counts) {
      double unsafe =
          measure([] { return std::make_unique<UnsafeT>(); }, threads, cfg);
      double ebr =
          measure([] { return std::make_unique<EbrT>(); }, threads, cfg);
      double ebrlf =
          measure([] { return std::make_unique<EbrLfT>(); }, threads, cfg);
      double rlu =
          measure([] { return std::make_unique<RluT>(); }, threads, cfg);
      double bundle =
          measure([] { return std::make_unique<BundleT>(); }, threads, cfg);
      std::printf("%8d %10.3f %10.3f %10.3f %10.3f | %9.3f %9.3f %9.3f %9.3f\n",
                  threads, unsafe, ebr, ebrlf, rlu, ebr / unsafe,
                  ebrlf / unsafe, rlu / unsafe, bundle / unsafe);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bref;
  using namespace bref::bench;
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 120;
  print_header("fig3 rq-size sweep", base);
  const std::string ds = args.get_str("--ds", "both");
  if (ds == "sl" || ds == "both")
    run_family<BundleSkipListSet, UnsafeSkipListSet, EbrRqSkipListSet,
               EbrRqLfSkipListSet, RluSkipListSet>("skip list", base);
  if (ds == "ct" || ds == "both")
    run_family<BundleCitrusSet, UnsafeCitrusSet, EbrRqCitrusSet,
               EbrRqLfCitrusSet, RluCitrusSet>("citrus tree", base);
  return 0;
}
