// Figure 3: throughput relative to Unsafe for range-query lengths
// {1,10,50,100,250,500} under the 50-0-50 mix, for the skip-list (top) and
// Citrus-tree (bottom) families. The competitor set per family is derived
// from the ImplRegistry (fig2_common.h) instead of hard-coded template
// lists, so self-structured techniques such as LFCA appear automatically.
// We print one block per length: absolute Mops/s per competitor, then each
// linearizable competitor's throughput relative to the family's Unsafe
// baseline.

#include <memory>
#include <string>

#include "fig2_common.h"

namespace {

using namespace bref;
using namespace bref::bench;

void run_family(const char* structure, const char* tag, const Config& base) {
  const auto competitors = competitors_for(structure);
  const std::string unsafe_name = std::string("Unsafe-") + structure;
  std::printf("\n=== Figure 3 (%s): relative throughput vs %s, 50-0-50 ===\n",
              tag, unsafe_name.c_str());
  const int kSizes[6] = {1, 10, 50, 100, 250, 500};
  for (int size : kSizes) {
    Config cfg = base;
    cfg.u_pct = 50;
    cfg.c_pct = 0;
    cfg.rq_pct = 50;
    cfg.rq_size = size;
    std::printf("-- RQ size %d --\n", size);
    std::printf("%8s", "threads");
    for (const auto& d : competitors)
      std::printf(" %13s", self_structured(d) ? d.name.c_str()
                                              : d.technique.c_str());
    std::printf(" | rel:");
    for (const auto& d : competitors)
      if (d.caps.linearizable_rq)
        std::printf(" %13s", self_structured(d) ? d.name.c_str()
                                                : d.technique.c_str());
    std::printf("\n");
    for (int threads : cfg.thread_counts) {
      std::vector<double> mops;
      double unsafe_mops = 0;
      for (const auto& d : competitors) {
        mops.push_back(measure(
            [&] { return ImplRegistry::instance().create(d.name); }, threads,
            cfg));
        if (d.name == unsafe_name) unsafe_mops = mops.back();
      }
      std::printf("%8d", threads);
      for (double m : mops) std::printf(" %13.3f", m);
      std::printf(" |     ");  // same width as " | rel:"
      for (size_t i = 0; i < competitors.size(); ++i)
        if (competitors[i].caps.linearizable_rq)
          std::printf(" %13.3f",
                      unsafe_mops > 0 ? mops[i] / unsafe_mops : 0.0);
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 120;
  print_header("fig3 rq-size sweep", base);
  const std::string ds = args.get_str("--ds", "both");
  if (ds == "sl" || ds == "both") run_family("skiplist", "skip list", base);
  if (ds == "ct" || ds == "both") run_family("citrus", "citrus tree", base);
  return 0;
}
