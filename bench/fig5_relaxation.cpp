// Figure 5 (supplementary A): weakened linearizability. The bundled skip
// list's global timestamp is advanced only every T-th update per thread;
// we report throughput relative to the fully linearizable bundled skip
// list (T=1) across workload mixes. Paper: ~2x at T=50 with 50% updates,
// ~3x when update-dominated, little gain for read-mostly mixes, and
// T > 50 ~= T = infinity.

#include <memory>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace bref;
  using namespace bref::bench;
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 150;
  std::printf("=== Figure 5: relaxed globalTs threshold T, bundled skip "
              "list, rel. to T=1 ===\n");
  print_header("U-0-RQ mixes", base);
  const uint64_t kThresholds[5] = {1, 2, 5, 50,
                                   GlobalTimestamp::kRelaxInfinite};
  const int kUpdatePcts[5] = {0, 10, 50, 90, 100};
  const int threads = base.thread_counts.back();
  std::printf("%9s %10s | rel: %8s %8s %8s %8s\n", "update%", "T=1(Mops)",
              "T=2", "T=5", "T=50", "T=inf");
  for (int u : kUpdatePcts) {
    Config cfg = base;
    cfg.u_pct = u;
    cfg.c_pct = 0;
    cfg.rq_pct = 100 - u;
    double mops[5];
    for (int i = 0; i < 5; ++i) {
      const uint64_t t_val = kThresholds[i];
      mops[i] = measure(
          [t_val] {
            return std::make_unique<BundledSkipList<KeyT, ValT>>(t_val);
          },
          threads, cfg);
    }
    std::printf("%9d %10.3f | %8.2f %8.2f %8.2f %8.2f\n", u, mops[0],
                mops[1] / mops[0], mops[2] / mops[0], mops[3] / mops[0],
                mops[4] / mops[0]);
  }
  std::printf("shape-check: paper expects gains to grow with update share "
              "and T=50 to be close to T=inf.\n");
  return 0;
}
