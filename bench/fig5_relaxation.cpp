// Figure 5 (supplementary A): weakened linearizability. A relaxation-
// capable structure's global timestamp is advanced only every T-th update
// per thread; we report throughput relative to the fully linearizable
// configuration (T=1) across workload mixes. Paper (bundled skip list):
// ~2x at T=50 with 50% updates, ~3x when update-dominated, little gain for
// read-mostly mixes, and T > 50 ~= T = infinity.
//
// The competitor set is the registry's relaxation-capable builtins (one
// panel per structure) rather than a hard-coded template list, mirroring
// fig2/fig3: a new relaxation-capable registration joins automatically,
// and the knob travels through SetOptions::relax_threshold — the same
// validated path applications use.

#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace bref;
  using namespace bref::bench;
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 150;
  json_init(args, "fig5_relaxation", base);

  std::vector<ImplDescriptor> competitors;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.builtin && d.caps.relaxation) competitors.push_back(d);

  std::printf("=== Figure 5: relaxed globalTs threshold T, rel. to T=1 "
              "(registry: %zu relaxation-capable builtins) ===\n",
              competitors.size());
  print_header("U-0-RQ mixes", base);
  const uint64_t kThresholds[5] = {1, 2, 5, 50,
                                   GlobalTimestamp::kRelaxInfinite};
  const char* kThresholdTags[5] = {"1", "2", "5", "50", "inf"};
  const int kUpdatePcts[5] = {0, 10, 50, 90, 100};
  const int threads = base.thread_counts.back();

  for (const auto& d : competitors) {
    std::printf("\n-- %s --\n", d.name.c_str());
    std::printf("%9s %10s | rel: %8s %8s %8s %8s\n", "update%", "T=1(Mops)",
                "T=2", "T=5", "T=50", "T=inf");
    for (int u : kUpdatePcts) {
      Config cfg = base;
      cfg.u_pct = u;
      cfg.c_pct = 0;
      cfg.rq_pct = 100 - u;
      char mix_str[32];
      std::snprintf(mix_str, sizeof mix_str, "%d-0-%d", u, 100 - u);
      double mops[5];
      for (int i = 0; i < 5; ++i) {
        const uint64_t t_val = kThresholds[i];
        const Measured md = measure_detailed(
            [&] {
              return ImplRegistry::instance().create(
                  d.name, SetOptions{.relax_threshold = t_val});
            },
            threads, cfg);
        mops[i] = md.mops;
        JsonSink::instance().record(d.name + "-T" + kThresholdTags[i],
                                    mix_str, threads, md);
      }
      std::printf("%9d %10.3f | %8.2f %8.2f %8.2f %8.2f\n", u, mops[0],
                  mops[1] / mops[0], mops[2] / mops[0], mops[3] / mops[0],
                  mops[4] / mops[0]);
    }
  }
  std::printf("\nshape-check: paper expects gains to grow with update share "
              "and T=50 to be close to T=inf.\n");
  JsonSink::instance().flush();
  return 0;
}
