// Table 1 (supplementary B): % throughput overhead of enabling memory
// reclamation (EBR node reclamation + background maintenance) relative to
// the leaky configuration, for update shares {0,10,50,90,100}% and
// maintenance delays d in {0,1,10,100} ms. Paper (bundled skip list): at
// most ~14% overhead, shrinking as the delay grows.
//
// The competitor set is the registry's reclamation-capable linearizable
// builtins (Bundle x3 + LFCA) rather than a hard-coded typed list, and the
// background work runs through the type-erased MaintenanceService
// (src/shard/maintenance.h) rather than the typed BundleCleaner: every
// duty the implementation exposes (bundle pruning, epoch pushes) is
// driven at a fixed cadence d (adaptive back-off disabled — the paper's
// parameter is the delay itself). `--impl <registry-name>` restricts the
// sweep to one panel.
//
// Methodology note: the leaky baseline is re-measured *next to* every
// reclaiming cell (paired A/B) and both sides take the median of --runs
// trials; an up-front baseline drifts by tens of percent over the minutes
// the grid takes, which swamps the single-digit effect under measurement.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "harness.h"
#include "shard/maintenance.h"

namespace {

using namespace bref;
using namespace bref::bench;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double measure_leaky(const std::string& name, int threads, const Config& cfg,
                     int trials) {
  std::vector<double> mops;
  for (int run = 0; run < trials; ++run) {
    auto ds = ImplRegistry::instance().create(name);
    prefill(*ds, cfg.key_range);
    mops.push_back(run_mixed_trial(*ds, threads, cfg).mops);
  }
  return median(std::move(mops));
}

double measure_reclaiming(const std::string& name, int threads,
                          const Config& cfg, long delay_ms, int trials) {
  std::vector<double> mops;
  for (int run = 0; run < trials; ++run) {
    auto ds = ImplRegistry::instance().create(name, SetOptions{.reclaim = true});
    prefill(*ds, cfg.key_range);
    // d=0 used to mean "hot-loop back-to-back passes"; interval 0 now
    // means "sleep until signalled", so express d=0 as a wake per retire —
    // same reclamation latency, none of the idle spin.
    MaintenanceOptions mo{.interval = std::chrono::milliseconds(delay_ms),
                          .adaptive = false};
    if (delay_ms == 0) mo.backlog_wake = 1;
    MaintenanceService svc(*ds, mo);
    svc.start();
    mops.push_back(run_mixed_trial(*ds, threads, cfg).mops);
    svc.stop();
  }
  return median(std::move(mops));
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 150;
  const int trials = args.has("--runs") ? base.runs : 3;
  const std::string only = args.get_str("--impl", "");

  std::vector<ImplDescriptor> competitors;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.builtin && d.caps.reclamation && d.caps.linearizable_rq &&
        (only.empty() || d.name == only))
      competitors.push_back(d);

  std::printf("=== Table 1: %% overhead of memory reclamation (registry: "
              "%zu reclamation-capable linearizable builtins) ===\n",
              competitors.size());
  print_header("U-(90-U)-10 mixes, paired A/B, median of trials", base);
  const int kUpdatePcts[5] = {0, 10, 50, 90, 100};
  const long kDelaysMs[4] = {0, 1, 10, 100};
  // Highest sweep point by default. On machines with fewer cores than
  // workers the maintenance workers' CPU share is diluted among the
  // oversubscribed workers, which approximates the paper's many-core
  // regime better than giving them whole cores would.
  const int threads = base.thread_counts.back();

  for (const auto& d : competitors) {
    std::printf("\n-- %s --\n", d.name.c_str());
    std::printf("%10s |", "delay");
    for (int u : kUpdatePcts) std::printf(" %6d%%", u);
    std::printf("   (update share)\n");
    for (long delay : kDelaysMs) {
      std::printf("%8ldms |", delay);
      for (int u_pct : kUpdatePcts) {
        Config cfg = base;
        cfg.u_pct = u_pct;
        cfg.c_pct = u_pct <= 90 ? 90 - u_pct : 0;
        cfg.rq_pct = 100 - cfg.u_pct - cfg.c_pct;
        const double leaky = measure_leaky(d.name, threads, cfg, trials);
        const double reclaimed =
            measure_reclaiming(d.name, threads, cfg, delay, trials);
        const double overhead = (1.0 - reclaimed / leaky) * 100.0;
        std::printf(" %6.1f%%", overhead);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("\nshape-check: paper reports <= ~14%% overhead, decreasing "
              "with larger cleanup delay.\n");
  return 0;
}
