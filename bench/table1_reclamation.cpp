// Table 1 (supplementary B): % throughput overhead of enabling memory
// reclamation (EBR node reclamation + background bundle cleaner) relative
// to the leaky configuration, for update shares {0,10,50,90,100}% and
// cleaner delays d in {0,1,10,100} ms. Paper: at most ~14% overhead,
// shrinking as the delay grows.
//
// Methodology note: the leaky baseline is re-measured *next to* every
// reclaiming cell (paired A/B) and both sides take the median of --runs
// trials; an up-front baseline drifts by tens of percent over the minutes
// the grid takes, which swamps the single-digit effect under measurement.

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/bundle_cleaner.h"
#include "harness.h"

namespace {

using namespace bref;
using namespace bref::bench;
using SL = BundledSkipList<KeyT, ValT>;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double measure_leaky(int threads, const Config& cfg, int trials) {
  std::vector<double> mops;
  for (int run = 0; run < trials; ++run) {
    auto ds = std::make_unique<SL>();
    prefill(*ds, cfg.key_range);
    mops.push_back(run_mixed_trial(*ds, threads, cfg).mops);
  }
  return median(std::move(mops));
}

double measure_reclaiming(int threads, const Config& cfg, long delay_ms,
                          int trials) {
  std::vector<double> mops;
  for (int run = 0; run < trials; ++run) {
    auto ds = std::make_unique<SL>(1, /*reclaim=*/true);
    prefill(*ds, cfg.key_range);
    BundleCleaner<SL> cleaner(*ds, std::chrono::milliseconds(delay_ms));
    mops.push_back(run_mixed_trial(*ds, threads, cfg).mops);
    cleaner.stop();
  }
  return median(std::move(mops));
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 150;
  const int trials = args.has("--runs") ? base.runs : 3;
  std::printf("=== Table 1: %% overhead of memory reclamation (bundled "
              "skip list) ===\n");
  print_header("U-(90-U)-10 mixes, paired A/B, median of trials", base);
  const int kUpdatePcts[5] = {0, 10, 50, 90, 100};
  const long kDelaysMs[4] = {0, 1, 10, 100};
  // Highest sweep point by default. On machines with fewer cores than
  // workers the cleaner's CPU share is diluted among the oversubscribed
  // workers, which approximates the paper's many-core regime better than
  // giving the cleaner a whole core to itself would.
  const int threads = base.thread_counts.back();

  std::printf("%10s |", "delay");
  for (int u : kUpdatePcts) std::printf(" %6d%%", u);
  std::printf("   (update share)\n");
  for (long d : kDelaysMs) {
    std::printf("%8ldms |", d);
    for (int u_pct : kUpdatePcts) {
      Config cfg = base;
      cfg.u_pct = u_pct;
      cfg.c_pct = u_pct <= 90 ? 90 - u_pct : 0;
      cfg.rq_pct = 100 - cfg.u_pct - cfg.c_pct;
      const double leaky = measure_leaky(threads, cfg, trials);
      const double reclaimed = measure_reclaiming(threads, cfg, d, trials);
      const double overhead = (1.0 - reclaimed / leaky) * 100.0;
      std::printf(" %6.1f%%", overhead);
    }
    std::printf("\n");
  }
  std::printf("shape-check: paper reports <= ~14%% overhead, decreasing "
              "with larger cleanup delay.\n");
  return 0;
}
