#pragma once
// Benchmark harness reproducing the paper's methodology (Section 8):
// structures are prefilled to half their key range, then N threads run a
// U-C-RQ operation mix (updates split evenly between inserts and removes,
// keys drawn uniformly) for a fixed duration; we report Mops/s.
//
// Defaults are scaled to finish quickly on a small machine; every bench
// binary accepts flags (--threads, --keyrange, --duration, --runs, ...) to
// reproduce the paper's full-scale configuration.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "api/range_snapshot.h"
#include "api/session.h"
#include "common/cacheline.h"
#include "common/random.h"
#include "common/timing.h"
#include "core/entry_pool.h"
#include "obs/metrics.h"

namespace bref::bench {

struct Config {
  std::vector<int> thread_counts{1, 2, 4};
  int duration_ms = 200;
  int runs = 1;  // paper uses 3; default 1 keeps the suite quick
  KeyT key_range = 100000;
  int u_pct = 10;
  int c_pct = 80;
  int rq_pct = 10;
  int rq_size = 50;
  uint64_t seed = 1;
  // Key skew: 0 = uniform (the paper's microbenchmark setting); > 0 draws
  // keys Zipf(theta), approximating the skewed access TPC-C exhibits.
  double zipf_theta = 0.0;
};

struct Result {
  double mops = 0;
  uint64_t ops = 0;
  double elapsed_s = 0;
};

/// Insert keys until the structure holds key_range/2 elements (uniformly
/// random content, as in the paper's setup). Workers hold TypedSessions
/// pinned to dense ids 0..threads-1 (the drivers' explicit-id convention).
template <typename DS>
void prefill(DS& ds, KeyT key_range, int threads = 2, uint64_t seed = 99) {
  std::atomic<KeyT> inserted{0};
  const KeyT target = key_range / 2;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      TypedSession<DS> s(ds, t);
      Xoshiro256 rng(seed + t);
      while (inserted.load(std::memory_order_relaxed) < target) {
        KeyT k = 1 + static_cast<KeyT>(rng.next_range(key_range));
        if (s.insert(k, k)) inserted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : ts) th.join();
}

/// One timed trial of the paper's mixed workload on a prefilled structure.
template <typename DS>
Result run_mixed_trial(DS& ds, int threads, const Config& cfg) {
  std::vector<CachePadded<uint64_t>> op_counts(threads);
  std::atomic<bool> stop{false};
  std::barrier start_barrier(threads + 1);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      TypedSession<DS> s(ds, t);
      Xoshiro256 rng(cfg.seed * 977 + t);
      ZipfGenerator zipf(static_cast<uint64_t>(cfg.key_range),
                         cfg.zipf_theta > 0 ? cfg.zipf_theta : 0.5,
                         cfg.seed * 31 + t);
      RangeSnapshot rq_out;
      rq_out.buffer().reserve(cfg.rq_size + 16);
      uint64_t ops = 0;
      start_barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t dice = rng.next_range(100);
        const KeyT k =
            cfg.zipf_theta > 0
                ? 1 + static_cast<KeyT>(zipf.next())
                : 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
        if (dice < static_cast<uint64_t>(cfg.u_pct)) {
          if (rng.next_range(2) == 0)
            s.insert(k, k);
          else
            s.remove(k);
        } else if (dice < static_cast<uint64_t>(cfg.u_pct + cfg.c_pct)) {
          s.contains(k);
        } else {
          s.range_query(k, k + cfg.rq_size - 1, rq_out);
        }
        ++ops;
      }
      *op_counts[t] = ops;
    });
  }
  start_barrier.arrive_and_wait();
  const auto t0 = now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : ts) th.join();
  Result r;
  r.elapsed_s = elapsed_s(t0);
  for (auto& c : op_counts) r.ops += *c;
  r.mops = static_cast<double>(r.ops) / r.elapsed_s / 1e6;
  return r;
}

/// measure() result with the entry-allocation profile of the timed trials:
/// `pool` is the delta of every EntryPool's counters across the trials
/// (prefill excluded), `allocs_per_op` the heap allocations the pooled
/// entry paths (bundle entries, EBR-RQ nodes) performed per operation —
/// zero in pooled steady state, about entries-per-update on the malloc
/// baseline, and identically zero for impls with no pooled path (their
/// allocations are uninstrumented). `limbo_checked` counts the limbo nodes
/// the run's range queries scanned (EBR-RQ family; 0 elsewhere) — the
/// "hundreds of limbo nodes per query" overhead the paper reports, now a
/// per-run counter in the --json record.
struct Measured {
  double mops = 0;
  uint64_t ops = 0;
  double allocs_per_op = 0;
  uint64_t limbo_checked = 0;
  EntryPoolStats pool;
  // Latency percentiles (microseconds), filled by the benches that measure
  // per-op latency (fig7_server's open-loop driver, rq_latency's probe).
  // has_latency gates the fields' presence in the --json record so the
  // closed-loop benches' records keep their historical shape.
  bool has_latency = false;
  double p50_us = 0, p99_us = 0, p999_us = 0, max_us = 0;
  /// The merged distribution behind the percentiles — the same log₂
  /// histogram type the server's stage metrics use (obs::Histogram
  /// snapshots merge into it with +=), so bench-side and server-side
  /// latencies share one quantile implementation and accuracy bound.
  obs::HistogramSnapshot latency;

  /// Fill the latency fields from a merged histogram of nanosecond
  /// samples. Quantiles are bucket-interpolated (DESIGN.md §7); max is
  /// the upper bound of the highest occupied bucket.
  void set_latencies(const obs::HistogramSnapshot& ns) {
    if (ns.count == 0) return;
    has_latency = true;
    latency = ns;
    p50_us = ns.quantile(0.50) / 1000.0;
    p99_us = ns.quantile(0.99) / 1000.0;
    p999_us = ns.quantile(0.999) / 1000.0;
    max_us = ns.quantile(1.0) / 1000.0;
  }
};

/// Build + prefill + run `runs` trials. `trial` runs one timed trial on a
/// prefilled structure (defaults to run_mixed_trial; the ablations wrap
/// it to run a cleaner alongside); the pool-counter delta brackets it.
template <typename MakeFn, typename TrialFn>
Measured measure_detailed(MakeFn&& make, int threads, const Config& cfg,
                          TrialFn&& trial) {
  Measured m;
  double total = 0;
  for (int run = 0; run < cfg.runs; ++run) {
    auto ds = make();
    prefill(*ds, cfg.key_range);
    EntryPoolStats before = EntryPoolRegistry::instance().totals();
    Result r = trial(*ds, threads, cfg);
    EntryPoolStats delta = EntryPoolRegistry::instance().totals();
    delta -= before;
    m.pool += delta;
    m.ops += r.ops;
    total += r.mops;
    // Structure-specific counters, duck-typed so the harness stays generic:
    // the EBR-RQ family reports how many limbo nodes its queries scanned
    // (the structure is fresh per run, so the raw counter is the delta).
    if constexpr (requires { ds->limbo_nodes_checked(); })
      m.limbo_checked += ds->limbo_nodes_checked();
  }
  m.mops = total / cfg.runs;
  m.allocs_per_op =
      m.ops > 0 ? static_cast<double>(m.pool.allocs()) / m.ops : 0.0;
  return m;
}

template <typename MakeFn>
Measured measure_detailed(MakeFn&& make, int threads, const Config& cfg) {
  return measure_detailed(
      make, threads, cfg,
      [](auto& ds, int th, const Config& c) {
        return run_mixed_trial(ds, th, c);
      });
}

/// Average Mops/s only (the figure benches' historical shape).
template <typename MakeFn>
double measure(MakeFn&& make, int threads, const Config& cfg) {
  return measure_detailed(make, threads, cfg).mops;
}

// ---- tiny argv parser ------------------------------------------------------

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  long get_long(const char* name, long def) const {
    const char* v = find(name);
    return v != nullptr ? std::atol(v) : def;
  }

  double get_double(const char* name, double def) const {
    const char* v = find(name);
    return v != nullptr ? std::atof(v) : def;
  }

  std::string get_str(const char* name, const std::string& def) const {
    const char* v = find(name);
    return v != nullptr ? std::string(v) : def;
  }

  std::vector<int> get_int_list(const char* name,
                                std::vector<int> def) const {
    const char* v = find(name);
    if (v == nullptr) return def;
    std::vector<int> out;
    std::string s(v);
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
    return out;
  }

  bool has(const char* name) const {
    for (int i = 1; i < argc_; ++i)
      if (std::strcmp(argv_[i], name) == 0) return true;
    return false;
  }

 private:
  const char* find(const char* name) const {
    for (int i = 1; i + 1 < argc_; ++i)
      if (std::strcmp(argv_[i], name) == 0) return argv_[i + 1];
    return nullptr;
  }
  int argc_;
  char** argv_;
};

/// Common flag handling for the figure benches.
inline Config config_from_args(const Args& args, Config cfg = Config{}) {
  cfg.thread_counts = args.get_int_list("--threads", cfg.thread_counts);
  cfg.duration_ms =
      static_cast<int>(args.get_long("--duration", cfg.duration_ms));
  cfg.runs = static_cast<int>(args.get_long("--runs", cfg.runs));
  cfg.key_range = args.get_long("--keyrange", cfg.key_range);
  cfg.rq_size = static_cast<int>(args.get_long("--rqsize", cfg.rq_size));
  cfg.seed = args.get_long("--seed", cfg.seed);
  cfg.zipf_theta = args.get_double("--zipf", cfg.zipf_theta);
  return cfg;
}

inline void print_header(const char* title, const Config& cfg) {
  std::printf("# %s\n", title);
  std::printf("# keyrange=%lld duration=%dms runs=%d rqsize=%d",
              static_cast<long long>(cfg.key_range), cfg.duration_ms,
              cfg.runs, cfg.rq_size);
  if (cfg.zipf_theta > 0) std::printf(" zipf=%.2f", cfg.zipf_theta);
  std::printf("\n");
}

// ---- machine-readable output (--json) --------------------------------------
//
// Every harness bench accepts `--json [path]`; when given, each measured
// cell is also recorded here and flushed as one JSON document (default
// path BENCH_<bench>.json) so CI can archive the perf trajectory instead
// of scraping stdout. Schema v1 record: impl, mix (U-C-RQ), threads,
// mops, ops, allocs_per_op (entry-path heap allocations), pool counters,
// limbo_checked (limbo nodes scanned by the run's range queries).

class JsonSink {
 public:
  struct Record {
    std::string impl;
    std::string mix;
    int threads = 0;
    Measured m;
    /// Optional raw-JSON tail spliced into the record ("key": value pairs,
    /// leading comma added by the writer) — e.g. fig6's per-shard
    /// maintenance stats. Caller is responsible for valid JSON.
    std::string extra;
  };

  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  /// Enable collection; `bench` names the binary, `path` the output file.
  void enable(std::string bench, std::string path, const Config& cfg) {
    bench_ = std::move(bench);
    path_ = std::move(path);
    cfg_ = cfg;
  }
  bool enabled() const { return !path_.empty(); }

  void record(std::string impl, std::string mix, int threads,
              const Measured& m, std::string extra = "") {
    if (!enabled()) return;
    records_.push_back(
        {std::move(impl), std::move(mix), threads, m, std::move(extra)});
  }

  /// Write the collected document; call once at the end of main().
  void flush() {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"schema\": 1,\n  \"bench\": \"%s\",\n",
                 bench_.c_str());
    std::fprintf(f,
                 "  \"config\": {\"keyrange\": %lld, \"duration_ms\": %d, "
                 "\"runs\": %d, \"rq_size\": %d, \"seed\": %llu, "
                 "\"zipf\": %.3f},\n",
                 static_cast<long long>(cfg_.key_range), cfg_.duration_ms,
                 cfg_.runs, cfg_.rq_size,
                 static_cast<unsigned long long>(cfg_.seed), cfg_.zipf_theta);
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      // Latency percentiles only for benches that measured them (open-loop
      // server traffic, the rq_latency probe); closed-loop records keep
      // their historical shape.
      char lat[160] = "";
      if (r.m.has_latency)
        std::snprintf(lat, sizeof lat,
                      ", \"p50_us\": %.1f, \"p99_us\": %.1f, "
                      "\"p999_us\": %.1f, \"max_us\": %.1f",
                      r.m.p50_us, r.m.p99_us, r.m.p999_us, r.m.max_us);
      std::fprintf(
          f,
          "    {\"impl\": \"%s\", \"mix\": \"%s\", \"threads\": %d, "
          "\"mops\": %.6f, \"ops\": %llu, \"allocs_per_op\": %.8f, "
          "\"pool_hits\": %llu, \"pool_misses\": %llu, "
          "\"pool_recycled\": %llu, \"limbo_checked\": %llu%s%s%s}%s\n",
          r.impl.c_str(), r.mix.c_str(), r.threads, r.m.mops,
          static_cast<unsigned long long>(r.m.ops), r.m.allocs_per_op,
          static_cast<unsigned long long>(r.m.pool.hits),
          static_cast<unsigned long long>(r.m.pool.misses),
          static_cast<unsigned long long>(r.m.pool.recycled),
          static_cast<unsigned long long>(r.m.limbo_checked), lat,
          r.extra.empty() ? "" : ", ", r.extra.c_str(),
          i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# json: wrote %zu records to %s\n", records_.size(),
                path_.c_str());
    records_.clear();
    path_.clear();
  }

 private:
  std::string bench_;
  std::string path_;
  Config cfg_;
  std::vector<Record> records_;
};

/// `--json` handling: absent -> disabled (empty string); bare `--json` or
/// `--json --next-flag` -> the default BENCH_<bench>.json; `--json path`
/// -> that path. Call after config_from_args, then JsonSink::instance()
/// .enable(...) when non-empty.
inline std::string json_path_from_args(const Args& args,
                                       const std::string& bench) {
  if (!args.has("--json")) return "";
  std::string v = args.get_str("--json", "");
  if (v.empty() || v.rfind("--", 0) == 0) return "BENCH_" + bench + ".json";
  return v;
}

/// One-line setup used by the bench mains.
inline void json_init(const Args& args, const char* bench,
                      const Config& cfg) {
  std::string path = json_path_from_args(args, bench);
  if (!path.empty()) JsonSink::instance().enable(bench, std::move(path), cfg);
}

}  // namespace bref::bench
