#pragma once
// Benchmark harness reproducing the paper's methodology (Section 8):
// structures are prefilled to half their key range, then N threads run a
// U-C-RQ operation mix (updates split evenly between inserts and removes,
// keys drawn uniformly) for a fixed duration; we report Mops/s.
//
// Defaults are scaled to finish quickly on a small machine; every bench
// binary accepts flags (--threads, --keyrange, --duration, --runs, ...) to
// reproduce the paper's full-scale configuration.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/ordered_set.h"
#include "api/range_snapshot.h"
#include "api/session.h"
#include "common/cacheline.h"
#include "common/random.h"
#include "common/timing.h"

namespace bref::bench {

struct Config {
  std::vector<int> thread_counts{1, 2, 4};
  int duration_ms = 200;
  int runs = 1;  // paper uses 3; default 1 keeps the suite quick
  KeyT key_range = 100000;
  int u_pct = 10;
  int c_pct = 80;
  int rq_pct = 10;
  int rq_size = 50;
  uint64_t seed = 1;
  // Key skew: 0 = uniform (the paper's microbenchmark setting); > 0 draws
  // keys Zipf(theta), approximating the skewed access TPC-C exhibits.
  double zipf_theta = 0.0;
};

struct Result {
  double mops = 0;
  uint64_t ops = 0;
  double elapsed_s = 0;
};

/// Insert keys until the structure holds key_range/2 elements (uniformly
/// random content, as in the paper's setup). Workers hold TypedSessions
/// pinned to dense ids 0..threads-1 (the drivers' explicit-id convention).
template <typename DS>
void prefill(DS& ds, KeyT key_range, int threads = 2, uint64_t seed = 99) {
  std::atomic<KeyT> inserted{0};
  const KeyT target = key_range / 2;
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      TypedSession<DS> s(ds, t);
      Xoshiro256 rng(seed + t);
      while (inserted.load(std::memory_order_relaxed) < target) {
        KeyT k = 1 + static_cast<KeyT>(rng.next_range(key_range));
        if (s.insert(k, k)) inserted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : ts) th.join();
}

/// One timed trial of the paper's mixed workload on a prefilled structure.
template <typename DS>
Result run_mixed_trial(DS& ds, int threads, const Config& cfg) {
  std::vector<CachePadded<uint64_t>> op_counts(threads);
  std::atomic<bool> stop{false};
  std::barrier start_barrier(threads + 1);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      TypedSession<DS> s(ds, t);
      Xoshiro256 rng(cfg.seed * 977 + t);
      ZipfGenerator zipf(static_cast<uint64_t>(cfg.key_range),
                         cfg.zipf_theta > 0 ? cfg.zipf_theta : 0.5,
                         cfg.seed * 31 + t);
      RangeSnapshot rq_out;
      rq_out.buffer().reserve(cfg.rq_size + 16);
      uint64_t ops = 0;
      start_barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t dice = rng.next_range(100);
        const KeyT k =
            cfg.zipf_theta > 0
                ? 1 + static_cast<KeyT>(zipf.next())
                : 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
        if (dice < static_cast<uint64_t>(cfg.u_pct)) {
          if (rng.next_range(2) == 0)
            s.insert(k, k);
          else
            s.remove(k);
        } else if (dice < static_cast<uint64_t>(cfg.u_pct + cfg.c_pct)) {
          s.contains(k);
        } else {
          s.range_query(k, k + cfg.rq_size - 1, rq_out);
        }
        ++ops;
      }
      *op_counts[t] = ops;
    });
  }
  start_barrier.arrive_and_wait();
  const auto t0 = now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : ts) th.join();
  Result r;
  r.elapsed_s = elapsed_s(t0);
  for (auto& c : op_counts) r.ops += *c;
  r.mops = static_cast<double>(r.ops) / r.elapsed_s / 1e6;
  return r;
}

/// Build + prefill + run `runs` trials, returning the average Mops/s.
template <typename MakeFn>
double measure(MakeFn&& make, int threads, const Config& cfg) {
  double total = 0;
  for (int run = 0; run < cfg.runs; ++run) {
    auto ds = make();
    prefill(*ds, cfg.key_range);
    total += run_mixed_trial(*ds, threads, cfg).mops;
  }
  return total / cfg.runs;
}

// ---- tiny argv parser ------------------------------------------------------

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  long get_long(const char* name, long def) const {
    const char* v = find(name);
    return v != nullptr ? std::atol(v) : def;
  }

  double get_double(const char* name, double def) const {
    const char* v = find(name);
    return v != nullptr ? std::atof(v) : def;
  }

  std::string get_str(const char* name, const std::string& def) const {
    const char* v = find(name);
    return v != nullptr ? std::string(v) : def;
  }

  std::vector<int> get_int_list(const char* name,
                                std::vector<int> def) const {
    const char* v = find(name);
    if (v == nullptr) return def;
    std::vector<int> out;
    std::string s(v);
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
    return out;
  }

  bool has(const char* name) const {
    for (int i = 1; i < argc_; ++i)
      if (std::strcmp(argv_[i], name) == 0) return true;
    return false;
  }

 private:
  const char* find(const char* name) const {
    for (int i = 1; i + 1 < argc_; ++i)
      if (std::strcmp(argv_[i], name) == 0) return argv_[i + 1];
    return nullptr;
  }
  int argc_;
  char** argv_;
};

/// Common flag handling for the figure benches.
inline Config config_from_args(const Args& args, Config cfg = Config{}) {
  cfg.thread_counts = args.get_int_list("--threads", cfg.thread_counts);
  cfg.duration_ms =
      static_cast<int>(args.get_long("--duration", cfg.duration_ms));
  cfg.runs = static_cast<int>(args.get_long("--runs", cfg.runs));
  cfg.key_range = args.get_long("--keyrange", cfg.key_range);
  cfg.rq_size = static_cast<int>(args.get_long("--rqsize", cfg.rq_size));
  cfg.seed = args.get_long("--seed", cfg.seed);
  cfg.zipf_theta = args.get_double("--zipf", cfg.zipf_theta);
  return cfg;
}

inline void print_header(const char* title, const Config& cfg) {
  std::printf("# %s\n", title);
  std::printf("# keyrange=%lld duration=%dms runs=%d rqsize=%d",
              static_cast<long long>(cfg.key_range), cfg.duration_ms,
              cfg.runs, cfg.rq_size);
  if (cfg.zipf_theta > 0) std::printf(" zipf=%.2f", cfg.zipf_theta);
  std::printf("\n");
}

}  // namespace bref::bench
