// Range-query latency distribution under update churn (ablation, ours).
//
// The paper's evaluation reports throughput; the minimality property is,
// at heart, a per-query *work* bound, which shows up most clearly in
// latency tails: an EBR-RQ query re-scans announce arrays and limbo lists
// (the paper measures 300-600 extra nodes at high thread counts), an RLU
// query may wait on writer synchronization, while a bundled query does
// bounded work — entry walk + one bundle dereference per snapshot node.
// This bench pins one thread on range queries (recording per-op latency
// into the shared obs log₂ histogram — the same quantile machinery the
// server's stage metrics use) while the remaining threads run a
// 50%-update churn, and reports p50/p90/p99/max per implementation via
// the runtime registry.

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "api/any_set.h"
#include "api/set.h"
#include "harness.h"
#include "obs/metrics.h"

namespace {

using namespace bref;
using namespace bref::bench;

struct ProbeRun {
  obs::HistogramSnapshot lat;  // per-query ns latencies, probe thread only
  double elapsed_s = 0;
};

ProbeRun run_one(const std::string& impl, int churn_threads,
                 const Config& cfg) {
  Set ds = Set::create(impl);
  // Dense ids come from the per-OS-thread SessionPool cache (the
  // application id discipline) rather than hand-pinned slots — the last
  // holdout of the tl_thread_id-era explicit-id convention in this bench.
  SessionPool pool(ds);
  {
    // Registry prefill (mirrors harness prefill, via the erased facade).
    std::atomic<KeyT> inserted{0};
    const KeyT target = cfg.key_range / 2;
    std::vector<std::thread> ts;
    for (int t = 0; t < 2; ++t) {
      ts.emplace_back([&, t] {
        ThreadSession s = pool.session();
        Xoshiro256 rng(99 + t);
        while (inserted.load(std::memory_order_relaxed) < target) {
          const KeyT k = 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
          if (s.insert(k, k))
            inserted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : ts) th.join();
  }
  std::atomic<bool> stop{false};
  std::barrier start(churn_threads + 2);
  std::vector<std::thread> churn;
  for (int t = 0; t < churn_threads; ++t) {
    churn.emplace_back([&, t] {
      ThreadSession s = pool.session();
      Xoshiro256 rng(7 * t + 3);
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const KeyT k = 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
        if (rng.next_range(2) == 0)
          s.insert(k, k);
        else
          s.remove(k);
      }
    });
  }
  obs::HistogramSnapshot lat;
  std::thread prober([&] {
    ThreadSession s = pool.session();
    Xoshiro256 rng(1);
    RangeSnapshot out;
    out.buffer().reserve(cfg.rq_size + 16);
    start.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const KeyT lo = 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
      const auto t0 = now();
      s.range_query(lo, lo + cfg.rq_size - 1, out);
      lat.record(static_cast<uint64_t>(elapsed_s(t0) * 1e9));
    }
  });
  start.arrive_and_wait();
  const auto t0 = now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  prober.join();
  const double elapsed = elapsed_s(t0);
  for (auto& t : churn) t.join();
  return {lat, elapsed};
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config cfg = config_from_args(args);
  if (!args.has("--duration")) cfg.duration_ms = 200;
  if (!args.has("--keyrange")) cfg.key_range = 20000;
  const int churn_threads =
      static_cast<int>(args.get_long("--churn-threads", 2));
  json_init(args, "rq_latency", cfg);
  print_header("range-query latency under churn", cfg);
  std::printf("# 1 probe thread, %d churn threads (50/50 insert-remove), "
              "rqsize=%d\n\n", churn_threads, cfg.rq_size);
  std::printf("%-24s %10s %10s %10s %10s %10s\n", "impl", "p50(us)",
              "p90(us)", "p99(us)", "max(us)", "queries");
  char mix_str[32];
  std::snprintf(mix_str, sizeof mix_str, "rq-probe+%dchurn", churn_threads);
  for (const auto& impl : any_set_names()) {
    ProbeRun run = run_one(impl, churn_threads, cfg);
    std::printf("%-24s %10.1f %10.1f %10.1f %10.1f %10llu\n", impl.c_str(),
                run.lat.quantile(0.50) / 1000.0, run.lat.quantile(0.90) / 1000.0,
                run.lat.quantile(0.99) / 1000.0, run.lat.quantile(1.0) / 1000.0,
                static_cast<unsigned long long>(run.lat.count));
    Measured m;
    m.ops = run.lat.count;
    m.mops = run.elapsed_s > 0
                 ? static_cast<double>(m.ops) / run.elapsed_s / 1e6
                 : 0.0;
    m.set_latencies(run.lat);  // p50/p99/p999/max into the record
    JsonSink::instance().record(impl, mix_str, churn_threads + 1, m);
  }
  JsonSink::instance().flush();
  std::printf("\nshape-check: Bundle p99 should sit well below EBR-RQ(-LF), "
              "whose queries re-scan announce arrays and limbo lists. RLU "
              "reads are near-Unsafe *here* because RLU shifts its cost to "
              "writers (rlu_synchronize) — visible as update-throughput "
              "collapse in fig2/fig3, not in read latency. Unsafe is the "
              "floor.\n");
  return 0;
}
