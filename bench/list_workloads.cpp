// Section 8.1 "Linked Lists": the paper reports (in text) relative
// throughput vs Unsafe for the lazy-list family at key range 10k with 10%
// range queries — RLU degrading from 0.97x (0-90-10) to 0.40x (90-0-10)
// while Bundle and the EBR variants track Unsafe closely. This bench
// regenerates that table; with --json each cell also lands in the
// BENCH_*.json record with its entry-allocation and limbo-scan counters
// (the EBR-RQ columns now run on pooled nodes, so their allocs/op should
// sit at ~0 like Bundle's instead of one malloc per update).

#include <memory>

#include "harness.h"

namespace {

using namespace bref;
using namespace bref::bench;

template <typename DS>
double cell(const char* impl, int threads, const Config& cfg,
            const char* mix) {
  Measured m =
      measure_detailed([] { return std::make_unique<DS>(); }, threads, cfg);
  JsonSink::instance().record(impl, mix, threads, m);
  return m.mops;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 10000;  // paper value
  if (!args.has("--duration")) base.duration_ms = 150;
  json_init(args, "list_workloads", base);
  std::printf("=== Linked list workloads (rel. throughput vs Unsafe) ===\n");
  print_header("lazy list family", base);
  const int mixes[5][3] = {
      {0, 90, 10}, {2, 88, 10}, {10, 80, 10}, {50, 40, 10}, {90, 0, 10}};
  std::printf("%12s %8s %10s | rel: %8s %8s %8s %8s %8s\n", "workload",
              "threads", "Unsafe", "EBR-RQ", "EBR-LF", "RLU", "Bundle",
              "SnapC");
  for (const auto& mix : mixes) {
    Config cfg = base;
    cfg.u_pct = mix[0];
    cfg.c_pct = mix[1];
    cfg.rq_pct = mix[2];
    char mix_tag[32];
    std::snprintf(mix_tag, sizeof(mix_tag), "%d-%d-%d", mix[0], mix[1],
                  mix[2]);
    const int threads = cfg.thread_counts.back();
    double unsafe = cell<UnsafeListSet>("Unsafe-list", threads, cfg, mix_tag);
    double ebr = cell<EbrRqListSet>("EBR-RQ-list", threads, cfg, mix_tag);
    double ebrlf =
        cell<EbrRqLfListSet>("EBR-RQ-LF-list", threads, cfg, mix_tag);
    double rlu = cell<RluListSet>("RLU-list", threads, cfg, mix_tag);
    double bundle = cell<BundleListSet>("Bundle-list", threads, cfg, mix_tag);
    double snapc =
        cell<SnapCollectorListSet>("Snapcollector-list", threads, cfg,
                                   mix_tag);
    std::printf("%4d-%3d-%3d %8d %10.3f | %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                mix[0], mix[1], mix[2], threads, unsafe, ebr / unsafe,
                ebrlf / unsafe, rlu / unsafe, bundle / unsafe,
                snapc / unsafe);
  }
  std::printf("shape-check: paper expects RLU to fall from ~0.97x "
              "(read-only) to ~0.40x (update-heavy) while Bundle/EBR stay "
              "near 1x; Snapcollector (excluded from the paper's plots) "
              "should trail everyone.\n");
  JsonSink::instance().flush();
  return 0;
}
