// Section 8.1 "Linked Lists": the paper reports (in text) relative
// throughput vs Unsafe for the lazy-list family at key range 10k with 10%
// range queries — RLU degrading from 0.97x (0-90-10) to 0.40x (90-0-10)
// while Bundle and the EBR variants track Unsafe closely. This bench
// regenerates that table.

#include <memory>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace bref;
  using namespace bref::bench;
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 10000;  // paper value
  if (!args.has("--duration")) base.duration_ms = 150;
  std::printf("=== Linked list workloads (rel. throughput vs Unsafe) ===\n");
  print_header("lazy list family", base);
  const int mixes[5][3] = {
      {0, 90, 10}, {2, 88, 10}, {10, 80, 10}, {50, 40, 10}, {90, 0, 10}};
  std::printf("%12s %8s %10s | rel: %8s %8s %8s %8s %8s\n", "workload",
              "threads", "Unsafe", "EBR-RQ", "EBR-LF", "RLU", "Bundle",
              "SnapC");
  for (const auto& mix : mixes) {
    Config cfg = base;
    cfg.u_pct = mix[0];
    cfg.c_pct = mix[1];
    cfg.rq_pct = mix[2];
    const int threads = cfg.thread_counts.back();
    double unsafe =
        measure([] { return std::make_unique<UnsafeListSet>(); }, threads, cfg);
    double ebr =
        measure([] { return std::make_unique<EbrRqListSet>(); }, threads, cfg);
    double ebrlf = measure([] { return std::make_unique<EbrRqLfListSet>(); },
                           threads, cfg);
    double rlu =
        measure([] { return std::make_unique<RluListSet>(); }, threads, cfg);
    double bundle =
        measure([] { return std::make_unique<BundleListSet>(); }, threads, cfg);
    double snapc = measure([] { return std::make_unique<SnapCollectorListSet>(); },
                           threads, cfg);
    std::printf("%4d-%3d-%3d %8d %10.3f | %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                mix[0], mix[1], mix[2], threads, unsafe, ebr / unsafe,
                ebrlf / unsafe, rlu / unsafe, bundle / unsafe,
                snapc / unsafe);
  }
  std::printf("shape-check: paper expects RLU to fall from ~0.97x "
              "(read-only) to ~0.40x (update-heavy) while Bundle/EBR stay "
              "near 1x; Snapcollector (excluded from the paper's plots) "
              "should trail everyone.\n");
  return 0;
}
