// Figure 6 (this repo's extension): ShardedSet scaling — throughput of the
// range-partitioned sharded set vs the single-structure baseline, swept
// over shard count x thread count x key skew, with the per-shard
// MaintenanceService running (reclaiming configuration, backlog-driven
// wakeups by default) and its per-shard stats recorded.
//
// Workload: the paper's mixed U-C-RQ microbenchmark over [1, keyrange],
// with the shards partitioning exactly that range — point ops always hit
// one shard; range queries of --rqsize keys occasionally straddle a shard
// boundary and take the coordinated single-timestamp path (the "coord"
// column counts them). The baseline column is the same registry
// implementation unsharded, same maintenance configuration, re-measured
// at EVERY sweep point so each sharded cell carries its own
// speedup_vs_unsharded and the per-K crossover (first thread count where
// sharding wins) lands in the JSON for tools/shard_gate.py.
//
//   fig6_sharded --impl Bundle-skiplist --shards 1,2,4,8 --threads 1,2,4
//                [--zipf 0,0.99] [--maint-interval MS] [--backlog-wake N]
//                [--no-maintain] [--json [path]]
//
// --zipf takes a comma list of thetas; theta > 0 skews point ops AND
// range-query anchors toward low keys (shard 0), the adversarial case for
// static range partitioning. --maint-interval defaults to 0: workers
// sleep until the retire/park paths signal `--backlog-wake` items
// (maintenance.h), so idle shards cost zero wakeups.
//
// --json records one entry per cell; sharded cells carry "extra" fields:
// shard count, baseline_mops / speedup_vs_unsharded / crossover_threads,
// RQ routing counters (coordinated / single-shard / fallback / timestamps
// acquired / shards pinned) and per-shard maintenance stats (passes,
// pruned, flushed, idle backoffs, backlog vs timer wakeups).

#include <memory>
#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "harness.h"
#include "shard/builtin_shards.h"
#include "shard/maintenance.h"

namespace {

using namespace bref;
using namespace bref::bench;

struct CellStats {
  ShardedSetStats routing;   // summed across trials (sharded cells only)
  bool has_routing = false;  // the unsharded baseline has no routing
  std::vector<ShardMaintenanceStats> maint;  // one per worker, across trials

  void add_routing(const ShardedSetStats& s) {
    routing += s;
    has_routing = true;
  }

  void add(const MaintenanceService& svc) {
    if (maint.size() < svc.workers()) maint.resize(svc.workers());
    for (size_t i = 0; i < svc.workers(); ++i) {
      const ShardMaintenanceStats s = svc.stats(i);
      maint[i].passes += s.passes;
      maint[i].bundle_entries_pruned += s.bundle_entries_pruned;
      maint[i].limbo_flushed += s.limbo_flushed;
      maint[i].idle_backoffs += s.idle_backoffs;
      maint[i].backlog_wakeups += s.backlog_wakeups;
      maint[i].timer_wakeups += s.timer_wakeups;
    }
  }

  std::string extra_json(size_t shards) const {
    char buf[320];
    std::string out;
    std::snprintf(buf, sizeof buf, "\"shards\": %zu, ", shards);
    out += buf;
    if (has_routing) {
      std::snprintf(
          buf, sizeof buf,
          "\"coordinated_rqs\": %llu, \"single_shard_rqs\": %llu, "
          "\"fallback_rqs\": %llu, \"timestamps_acquired\": %llu, "
          "\"coordinated_shards_pinned\": %llu, ",
          static_cast<unsigned long long>(routing.coordinated_rqs),
          static_cast<unsigned long long>(routing.single_shard_rqs),
          static_cast<unsigned long long>(routing.fallback_rqs),
          static_cast<unsigned long long>(routing.timestamps_acquired),
          static_cast<unsigned long long>(routing.coordinated_shards_pinned));
      out += buf;
    }
    out += "\"maintenance\": [";
    for (size_t i = 0; i < maint.size(); ++i) {
      std::snprintf(
          buf, sizeof buf,
          "%s{\"passes\": %llu, \"pruned\": %llu, "
          "\"flushed\": %llu, \"idle_backoffs\": %llu, "
          "\"backlog_wakeups\": %llu, \"timer_wakeups\": %llu}",
          i > 0 ? ", " : "", static_cast<unsigned long long>(maint[i].passes),
          static_cast<unsigned long long>(maint[i].bundle_entries_pruned),
          static_cast<unsigned long long>(maint[i].limbo_flushed),
          static_cast<unsigned long long>(maint[i].idle_backoffs),
          static_cast<unsigned long long>(maint[i].backlog_wakeups),
          static_cast<unsigned long long>(maint[i].timer_wakeups));
      out += buf;
    }
    return out + "]";
  }
};

// One measured sweep point, held back until the whole thread sweep for its
// theta is done so crossover_threads can be computed before recording.
struct Cell {
  int threads = 0;
  Measured md;
  CellStats stats;
};

std::vector<double> parse_zipf_list(const Args& args) {
  std::string s = args.get_str("--zipf", "0");
  std::vector<double> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(0.0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 150;
  json_init(args, "fig6_sharded", base);

  const std::string impl = args.get_str("--impl", "Bundle-skiplist");
  const auto shard_counts = args.get_int_list("--shards", {1, 2, 4, 8});
  const bool maintain = !args.has("--no-maintain");
  const std::vector<double> thetas = parse_zipf_list(args);

  MaintenanceOptions mo;
  mo.interval =
      std::chrono::milliseconds(args.get_long("--maint-interval", 0));
  mo.backlog_wake =
      static_cast<size_t>(args.get_long("--backlog-wake", 256));

  ImplDescriptor desc;
  if (!ImplRegistry::instance().find(impl, &desc)) {
    std::fprintf(stderr, "unknown implementation: %s\n", impl.c_str());
    return 1;
  }
  const SetOptions inner_opt{.reclaim = desc.caps.reclamation};

  std::printf("=== Figure 6: ShardedSet over %s (coordinated: %s), "
              "maintenance %s (interval %lldms, wake @%zu) ===\n",
              impl.c_str(), desc.caps.coordinated_rq ? "yes" : "per-shard merge",
              maintain ? "on" : "off",
              static_cast<long long>(mo.interval.count()), mo.backlog_wake);
  print_header("shard-count x thread-count x zipf, mixed U-C-RQ", base);

  for (double theta : thetas) {
    Config cfg = base;
    cfg.zipf_theta = theta;
    char mix_str[48];
    if (theta > 0)
      std::snprintf(mix_str, sizeof mix_str, "%d-%d-%d-z%.2f", cfg.u_pct,
                    cfg.c_pct, cfg.rq_pct, theta);
    else
      std::snprintf(mix_str, sizeof mix_str, "%d-%d-%d", cfg.u_pct, cfg.c_pct,
                    cfg.rq_pct);

    std::printf("-- zipf %.2f --\n", theta);
    std::printf("%8s %10s", "threads", "single");
    for (int k : shard_counts) std::printf("   K=%-6d", k);
    std::printf("  | coord-RQ share @max-K\n");

    std::vector<Cell> baseline;                       // one per thread count
    std::vector<std::vector<Cell>> sharded(shard_counts.size());

    for (int threads : cfg.thread_counts) {
      std::printf("%8d", threads);
      // Unsharded baseline: same implementation, same maintenance config.
      {
        Cell cell;
        cell.threads = threads;
        cell.md = measure_detailed(
            [&] { return ImplRegistry::instance().create(impl, inner_opt); },
            threads, cfg, [&](auto& ds, int th, const Config& c) {
              MaintenanceService svc(ds, mo);
              if (maintain) svc.start();
              Result r = run_mixed_trial(ds, th, c);
              svc.stop();
              cell.stats.add(svc);
              return r;
            });
        std::printf(" %10.3f", cell.md.mops);
        baseline.push_back(std::move(cell));
      }
      for (size_t ki = 0; ki < shard_counts.size(); ++ki) {
        const int k = shard_counts[ki];
        Cell cell;
        cell.threads = threads;
        cell.md = measure_detailed(
            [&] {
              ShardOptions so;
              so.shards = static_cast<size_t>(k);
              so.key_lo = 0;
              so.key_hi = cfg.key_range + 1;
              so.inner = inner_opt;
              return std::make_unique<ShardedSet>(impl, so);
            },
            threads, cfg, [&](ShardedSet& ds, int th, const Config& c) {
              MaintenanceService svc(ds, mo);
              if (maintain) svc.start();
              Result r = run_mixed_trial(ds, th, c);
              svc.stop();
              // Per trial (fresh structure each): sum both stat families so
              // the record's scopes match across --runs.
              cell.stats.add(svc);
              cell.stats.add_routing(ds.stats());
              return r;
            });
        std::printf(" %9.3f", cell.md.mops);
        sharded[ki].push_back(std::move(cell));
      }
      const CellStats& last = sharded.back().back().stats;
      const uint64_t rqs = last.routing.coordinated_rqs +
                           last.routing.single_shard_rqs +
                           last.routing.fallback_rqs;
      std::printf("  | %llu/%llu coordinated (K=%d)\n",
                  static_cast<unsigned long long>(last.routing.coordinated_rqs),
                  static_cast<unsigned long long>(rqs), shard_counts.back());
    }

    // Whole sweep measured: compute each K's crossover (first thread count
    // where sharded >= unsharded), record everything, print the summary.
    for (const Cell& b : baseline)
      JsonSink::instance().record(impl, mix_str, b.threads, b.md,
                                  b.stats.extra_json(1));
    for (size_t ki = 0; ki < shard_counts.size(); ++ki) {
      const int k = shard_counts[ki];
      int crossover = -1;
      for (size_t row = 0; row < sharded[ki].size(); ++row) {
        if (sharded[ki][row].md.mops >= baseline[row].md.mops) {
          crossover = sharded[ki][row].threads;
          break;
        }
      }
      for (size_t row = 0; row < sharded[ki].size(); ++row) {
        const Cell& c = sharded[ki][row];
        const double base_mops = baseline[row].md.mops;
        char pre[160];
        std::snprintf(pre, sizeof pre,
                      "\"baseline_mops\": %.6f, "
                      "\"speedup_vs_unsharded\": %.4f, "
                      "\"crossover_threads\": %d, ",
                      base_mops, base_mops > 0 ? c.md.mops / base_mops : 0.0,
                      crossover);
        JsonSink::instance().record(
            "Sharded" + std::to_string(k) + "-" + impl, mix_str, c.threads,
            c.md, pre + c.stats.extra_json(static_cast<size_t>(k)));
      }
      std::printf("crossover: K=%d beats unsharded from %s (zipf %.2f)\n", k,
                  crossover > 0 ? std::to_string(crossover).c_str() : "never",
                  theta);
    }
  }
  std::printf("shape-check: sharding should now hold the line even at low "
              "parallelism (batched coordinated announce + zero-coordination "
              "single-shard RQs) and win once threads contend; the "
              "coordinated share should stay modest (rqsize/keyrange per "
              "boundary).\n");
  JsonSink::instance().flush();
  return 0;
}
