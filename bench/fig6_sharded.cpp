// Figure 6 (this repo's extension): ShardedSet scaling — throughput of the
// range-partitioned sharded set vs the single-structure baseline, swept
// over shard count x thread count, with the per-shard MaintenanceService
// running (reclaiming configuration) and its per-shard stats recorded.
//
// Workload: the paper's mixed U-C-RQ microbenchmark over [1, keyrange],
// with the shards partitioning exactly that range — point ops always hit
// one shard; range queries of --rqsize keys occasionally straddle a shard
// boundary and take the coordinated single-timestamp path (the "coord"
// column counts them). The baseline column is the same registry
// implementation unsharded, same maintenance service.
//
//   fig6_sharded --impl Bundle-skiplist --shards 1,2,4,8 --threads 1,2,4
//                [--no-maintain] [--json [path]]
//
// --json records one entry per cell; sharded cells carry "extra" fields:
// shard count, RQ routing counters (coordinated / single-shard /
// fallback / timestamps acquired) and per-shard maintenance stats
// (passes, entries pruned, limbo flushed, idle backoffs).

#include <memory>
#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "harness.h"
#include "shard/builtin_shards.h"
#include "shard/maintenance.h"

namespace {

using namespace bref;
using namespace bref::bench;

struct CellStats {
  ShardedSetStats routing;   // summed across trials (sharded cells only)
  bool has_routing = false;  // the unsharded baseline has no routing
  std::vector<ShardMaintenanceStats> maint;  // one per worker, across trials

  void add_routing(const ShardedSetStats& s) {
    routing += s;
    has_routing = true;
  }

  void add(const MaintenanceService& svc) {
    if (maint.size() < svc.workers()) maint.resize(svc.workers());
    for (size_t i = 0; i < svc.workers(); ++i) {
      const ShardMaintenanceStats s = svc.stats(i);
      maint[i].passes += s.passes;
      maint[i].bundle_entries_pruned += s.bundle_entries_pruned;
      maint[i].limbo_flushed += s.limbo_flushed;
      maint[i].idle_backoffs += s.idle_backoffs;
    }
  }

  std::string extra_json(size_t shards) const {
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof buf, "\"shards\": %zu, ", shards);
    out += buf;
    if (has_routing) {
      std::snprintf(
          buf, sizeof buf,
          "\"coordinated_rqs\": %llu, \"single_shard_rqs\": %llu, "
          "\"fallback_rqs\": %llu, \"timestamps_acquired\": %llu, ",
          static_cast<unsigned long long>(routing.coordinated_rqs),
          static_cast<unsigned long long>(routing.single_shard_rqs),
          static_cast<unsigned long long>(routing.fallback_rqs),
          static_cast<unsigned long long>(routing.timestamps_acquired));
      out += buf;
    }
    out += "\"maintenance\": [";
    for (size_t i = 0; i < maint.size(); ++i) {
      std::snprintf(buf, sizeof buf,
                    "%s{\"passes\": %llu, \"pruned\": %llu, "
                    "\"flushed\": %llu, \"idle_backoffs\": %llu}",
                    i > 0 ? ", " : "",
                    static_cast<unsigned long long>(maint[i].passes),
                    static_cast<unsigned long long>(
                        maint[i].bundle_entries_pruned),
                    static_cast<unsigned long long>(maint[i].limbo_flushed),
                    static_cast<unsigned long long>(maint[i].idle_backoffs));
      out += buf;
    }
    return out + "]";
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;
  if (!args.has("--duration")) base.duration_ms = 150;
  json_init(args, "fig6_sharded", base);

  const std::string impl = args.get_str("--impl", "Bundle-skiplist");
  const auto shard_counts = args.get_int_list("--shards", {1, 2, 4, 8});
  const bool maintain = !args.has("--no-maintain");

  ImplDescriptor desc;
  if (!ImplRegistry::instance().find(impl, &desc)) {
    std::fprintf(stderr, "unknown implementation: %s\n", impl.c_str());
    return 1;
  }
  const SetOptions inner_opt{.reclaim = desc.caps.reclamation};

  std::printf("=== Figure 6: ShardedSet over %s (coordinated: %s), "
              "maintenance %s ===\n",
              impl.c_str(), desc.caps.coordinated_rq ? "yes" : "per-shard merge",
              maintain ? "on" : "off");
  print_header("shard-count x thread-count, mixed U-C-RQ", base);

  char mix_str[32];
  std::snprintf(mix_str, sizeof mix_str, "%d-%d-%d", base.u_pct, base.c_pct,
                base.rq_pct);

  std::printf("%8s %10s", "threads", "single");
  for (int k : shard_counts) std::printf("   K=%-6d", k);
  std::printf("  | coord-RQ share @max-K\n");

  for (int threads : base.thread_counts) {
    std::printf("%8d", threads);
    // Unsharded baseline: the same implementation, same maintenance.
    {
      CellStats cell;
      const Measured md = measure_detailed(
          [&] { return ImplRegistry::instance().create(impl, inner_opt); },
          threads, base, [&](auto& ds, int th, const Config& c) {
            MaintenanceService svc(ds);
            if (maintain) svc.start();
            Result r = run_mixed_trial(ds, th, c);
            svc.stop();
            cell.add(svc);
            return r;
          });
      std::printf(" %10.3f", md.mops);
      JsonSink::instance().record(impl, mix_str, threads, md,
                                  cell.extra_json(1));
    }
    CellStats last_cell;
    size_t last_k = 1;
    for (int k : shard_counts) {
      CellStats cell;
      const Measured md = measure_detailed(
          [&] {
            ShardOptions so;
            so.shards = static_cast<size_t>(k);
            so.key_lo = 0;
            so.key_hi = base.key_range + 1;
            so.inner = inner_opt;
            return std::make_unique<ShardedSet>(impl, so);
          },
          threads, base, [&](ShardedSet& ds, int th, const Config& c) {
            MaintenanceService svc(ds);
            if (maintain) svc.start();
            Result r = run_mixed_trial(ds, th, c);
            svc.stop();
            // Per trial (fresh structure each): sum both stat families so
            // the record's scopes match across --runs.
            cell.add(svc);
            cell.add_routing(ds.stats());
            return r;
          });
      std::printf(" %9.3f", md.mops);
      JsonSink::instance().record("Sharded" + std::to_string(k) + "-" + impl,
                                  mix_str, threads, md,
                                  cell.extra_json(static_cast<size_t>(k)));
      last_cell = cell;
      last_k = static_cast<size_t>(k);
    }
    const uint64_t rqs = last_cell.routing.coordinated_rqs +
                         last_cell.routing.single_shard_rqs +
                         last_cell.routing.fallback_rqs;
    std::printf("  | %llu/%llu coordinated (K=%zu)\n",
                static_cast<unsigned long long>(
                    last_cell.routing.coordinated_rqs),
                static_cast<unsigned long long>(rqs), last_k);
  }
  std::printf("shape-check: sharding should win on update-heavy mixes "
              "(contention splits K ways) and the coordinated share should "
              "stay modest (rqsize/keyrange per boundary).\n");
  JsonSink::instance().flush();
  return 0;
}
