// Figure 7 (this repo's extension): bref-server tail latency — an
// OPEN-LOOP traffic generator against the epoll-batched network front-end
// (src/net/server.h), reporting p50/p99/p999 response latency and achieved
// throughput per scenario.
//
// Open-loop means each connection sends on a fixed arrival schedule
// (total --rate ops/s spread evenly over --conns connections) regardless
// of whether earlier responses have come back, and latency is measured
// from the *scheduled* send time to response receipt. A server that stalls
// therefore accumulates queueing delay in the tail instead of silently
// slowing the generator down (the coordinated-omission trap of closed-loop
// drivers).
//
// Workload units are drawn per the scenario mix: point GET / INSERT /
// REMOVE, RANGE of --rqsize keys, and wire transactions (TXN_BEGIN +
// --txnops TXN_OPs + TXN_COMMIT pipelined as one unit, one latency sample
// at the commit reply). Keys are Zipf(--zipf, default 0.99) over
// [1, keyrange] — hot keys concentrate on a few shards, which is the point.
//
//   fig7_server [--conns 64] [--clients 4] [--rate 40000] [--workers 4]
//               [--shards 4] [--impl Bundle-skiplist] [--scenario all]
//               [--duration 1000] [--keyrange 65536] [--zipf 0.99]
//               [--txnops 4] [--wave-budget N] [--json [path]]
//               [--metrics-out path]
//
// Guard-layer scenarios (ISSUE 8):
//
//   --scenario overload   point mix at --rate ("overload-1x", the
//                         sustainable baseline) then at 5x --rate
//                         ("overload-5x"). Shed replies (kErrOverloaded)
//                         are counted separately and EXCLUDED from the
//                         latency histogram: the reported p99 is the
//                         p99-of-accepted, and "goodput" is the accepted
//                         rate. The acceptance gate wants shed > 0 at 5x,
//                         goodput within tolerance of the baseline, and
//                         p99-of-accepted within 3x the unloaded one.
//   --scenario scan       point mix without ("scan-off") and with
//                         ("scan-on") a background connection running
//                         whole-keyspace RANGEs back-to-back. With
//                         cooperative scan chunking the scans must not
//                         multiply the point p99 by more than ~2x.
//   --wave-budget N       sets GuardOptions::max_wave_frames (admission
//                         budget per worker wave; 0 disables shedding).
//
// Tracing scenarios (ISSUE 10):
//
//   --scenario trace      point mix with tracing fully disabled
//                         ("trace-off": no client stamps, server capture
//                         disarmed) then fully on ("trace-on": every
//                         request frame carries a trace context, server
//                         runs the default tail-biased capture policy).
//                         The gate (tools/trace_gate.py) holds the p99
//                         overhead of trace-on at <= 3% at matched
//                         achieved rate.
//   --trace on|off        whether the OTHER scenarios stamp + capture
//                         (default on). Every traced run's JSON record
//                         carries "trace": {"slowest": [...]} — the 10
//                         slowest requests of the scenario with their full
//                         per-stage span timelines (from TRACE_DUMP; the
//                         all-time board guarantees the true tail is
//                         there). tools/trace2chrome converts the dump to
//                         chrome://tracing JSON.
//   --trace-every N       reservoir rate while tracing (default 128).
//   --trace-threshold-us N  commit threshold while tracing (default 1000;
//                         every request slower than this is captured).
//
// --json records one entry per scenario; "threads" is the connection
// count, extra carries the offered/achieved rates, shed/goodput, the
// mid-run live connection count, the server-side queue/execute/flush p99
// attribution (deltas of the bref_net_stage_seconds histograms over the
// scenario), and the server's own stats document (frames-per-batch shows
// how well pipelining coalesced; the "guard" object carries
// shed/chunked/reaped). --metrics-out writes the mid-run Prometheus
// scrape to a file (CI validates it with tools/promcheck).

#include <fcntl.h>
#include <poll.h>

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timing.h"
#include "harness.h"
#include "net/client.h"
#include "net/server.h"

namespace {

using namespace bref;
using namespace bref::bench;

struct Scenario {
  const char* name;
  int u_pct;    // point updates (insert/remove split evenly)
  int c_pct;    // point lookups
  int rq_pct;   // range queries
  int txn_pct;  // wire transactions
};

constexpr Scenario kPoint{"point", 20, 80, 0, 0};
constexpr Scenario kMixed{"mixed", 10, 78, 10, 2};

struct DriverConfig {
  uint16_t port = 0;
  int conns = 64;
  int clients = 4;       // driver threads; conns are split among them
  uint64_t rate = 40000; // total offered ops/s across all connections
  int duration_ms = 1000;
  KeyT key_range = 1 << 16;
  int rq_size = 50;
  int txn_ops = 4;
  double zipf_theta = 0.99;
  uint64_t seed = 1;
  Scenario mix = kMixed;
  bool trace = true;  // stamp a trace context on every request frame
};

/// One scheduled-but-unanswered request frame. Responses arrive in frame
/// order per connection (PROTOCOL.md), so a FIFO of these matches them.
struct InFlight {
  net::Op op;
  uint64_t sched_ns;  // scheduled arrival of the unit this frame ends
  bool sample;        // record a latency sample at this frame's reply
};

struct Conn {
  Conn(uint16_t port, uint64_t interval_ns, uint64_t first_due_ns,
       const DriverConfig& cfg, uint64_t seed)
      : client(port),
        rng(seed),
        zipf(static_cast<uint64_t>(cfg.key_range), cfg.zipf_theta, seed ^ 77),
        interval(interval_ns),
        next_due(first_due_ns) {
    // The sync Client did the connect; drive its fd nonblocking from here.
    const int fd = client.fd();
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }

  /// Connection-unique trace ids (the per-conn seed is already unique);
  /// never 0 ("no context").
  uint64_t next_trace_id() {
    if (trace_base == 0) trace_base = (rng.next_u64() | 1) << 20;
    return trace_base + ++trace_seq;
  }

  net::Client client;
  Xoshiro256 rng;
  ZipfGenerator zipf;
  uint64_t interval;
  uint64_t next_due;
  uint64_t trace_base = 0;
  uint64_t trace_seq = 0;
  std::vector<uint8_t> out;  // encoded-but-unsent request bytes
  size_t out_off = 0;
  std::vector<uint8_t> in;   // partial response bytes
  std::deque<InFlight> inflight;
  bool dead = false;
};

struct DriverResult {
  obs::HistogramSnapshot latency;  // ns; ACCEPTED replies only
  uint64_t frames = 0;      // request frames completed (accepted + shed)
  uint64_t shed = 0;        // kErrOverloaded replies (op not executed)
  uint64_t errors = 0;      // connection/protocol failures (expect 0)
  uint64_t stragglers = 0;  // units unanswered at the drain deadline
};

uint64_t ns_since(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now() - t0)
          .count());
}

/// Append one workload unit's frames to c.out per the scenario mix, with
/// its latency clock starting at the *scheduled* time, not the send time.
void schedule_unit(Conn& c, const DriverConfig& cfg, uint64_t sched_ns) {
  const Scenario& mix = cfg.mix;
  const uint64_t dice = c.rng.next_range(100);
  const KeyT k = 1 + static_cast<KeyT>(c.zipf.next());
  // Traced runs stamp a trace context onto every frame right after
  // encoding it (while the frame is still the buffer tail) — the
  // tracing-on side of the overhead gate pays the full wire cost.
  const size_t unit_off = c.out.size();
  size_t frame_off = unit_off;
  auto stamp = [&] {
    if (cfg.trace) net::stamp_trace_context(c.out, frame_off, c.next_trace_id());
    frame_off = c.out.size();
  };
  if (dice < static_cast<uint64_t>(mix.txn_pct)) {
    net::encode_txn_begin(c.out);
    stamp();
    c.inflight.push_back({net::Op::kTxnBegin, sched_ns, false});
    for (int i = 0; i < cfg.txn_ops; ++i) {
      const KeyT tk = 1 + static_cast<KeyT>(c.zipf.next());
      switch (c.rng.next_range(3)) {
        case 0:
          net::encode_txn_op(c.out, net::Op::kInsert, tk, tk);
          break;
        case 1:
          net::encode_txn_op(c.out, net::Op::kRemove, tk);
          break;
        default:
          net::encode_txn_op(c.out, net::Op::kGet, tk);
          break;
      }
      stamp();
      c.inflight.push_back({net::Op::kTxnOp, sched_ns, false});
    }
    net::encode_txn_commit(c.out);
    stamp();
    c.inflight.push_back({net::Op::kTxnCommit, sched_ns, true});
  } else if (dice < static_cast<uint64_t>(mix.txn_pct + mix.rq_pct)) {
    net::encode_range(c.out, k, k + cfg.rq_size - 1);
    stamp();
    c.inflight.push_back({net::Op::kRange, sched_ns, true});
  } else if (dice <
             static_cast<uint64_t>(mix.txn_pct + mix.rq_pct + mix.u_pct)) {
    // One dice roll decides BOTH the encoded op and the in-flight record —
    // the reply decoder is op-directed, so they must agree.
    if (c.rng.next_range(2) == 0) {
      net::encode_insert(c.out, k, k);
      c.inflight.push_back({net::Op::kInsert, sched_ns, true});
    } else {
      net::encode_remove(c.out, k);
      c.inflight.push_back({net::Op::kRemove, sched_ns, true});
    }
    stamp();
  } else {
    net::encode_get(c.out, k);
    stamp();
    c.inflight.push_back({net::Op::kGet, sched_ns, true});
  }
}

/// Flush as much of c.out as the socket accepts (nonblocking).
void try_write(Conn& c, DriverResult& res) {
  while (c.out_off < c.out.size()) {
    const ssize_t r = ::send(c.client.fd(), c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c.dead = true;
      ++res.errors;
      return;
    }
    c.out_off += static_cast<size_t>(r);
  }
  c.out.clear();
  c.out_off = 0;
}

/// Read everything available and resolve completed frames against the
/// in-flight FIFO, recording latency samples at unit-ending replies.
void try_read(Conn& c, Clock::time_point t0, DriverResult& res) {
  uint8_t chunk[65536];
  for (;;) {
    const ssize_t r = ::recv(c.client.fd(), chunk, sizeof chunk, 0);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      c.dead = true;
      ++res.errors;
      return;
    }
    if (r == 0) {  // server closed; only expected if we poisoned the stream
      c.dead = true;
      ++res.errors;
      return;
    }
    c.in.insert(c.in.end(), chunk, chunk + r);
    if (static_cast<size_t>(r) < sizeof chunk) break;
  }
  size_t off = 0;
  net::FrameView f;
  size_t advance = 0;
  net::Reply reply;
  // Responses are exempt from the request-side max_frame (a RANGE reply is
  // bounded by the range asked for); 256 MiB is "anything sane".
  while (net::split_frame(c.in.data(), c.in.size(), off, 256u << 20, &f,
                          &advance) == net::SplitResult::kFrame) {
    off += advance;
    if (c.inflight.empty()) {  // reply with no matching request
      c.dead = true;
      ++res.errors;
      return;
    }
    const InFlight inf = c.inflight.front();
    c.inflight.pop_front();
    if (!net::decode_reply(inf.op, f, &reply)) {
      c.dead = true;
      ++res.errors;
      return;
    }
    ++res.frames;
    if (reply.overloaded()) {
      // Shed by admission control: a deliberate, well-formed outcome, not
      // an error. Excluded from the histogram so p99 is p99-of-accepted.
      ++res.shed;
      continue;
    }
    if (inf.sample) res.latency.record(ns_since(t0) - inf.sched_ns);
  }
  if (off > 0) c.in.erase(c.in.begin(), c.in.begin() + off);
}

/// One driver thread: owns `nconns` connections, runs their open-loop
/// schedules, and collects latency samples until every in-flight unit is
/// answered (or the drain deadline passes).
///
/// All threads finish their connect storm BEFORE the schedule clock
/// starts (`ready` barrier; its completion step stamps t0) — on a small
/// machine establishing 64 connections takes tens of milliseconds, and
/// charging that setup to the first wave's scheduled arrivals would
/// fabricate a startup tail.
template <typename Barrier>
DriverResult drive(const DriverConfig& cfg, int thread_idx, int nconns,
                   Barrier& ready, const Clock::time_point& t0_out,
                   uint64_t end_ns) {
  DriverResult res;
  // Per-connection interval so the *total* offered rate is cfg.rate.
  const uint64_t interval_ns =
      1'000'000'000ull * static_cast<uint64_t>(cfg.conns) /
      (cfg.rate > 0 ? cfg.rate : 1);
  std::vector<std::unique_ptr<Conn>> conns;
  for (int i = 0; i < nconns; ++i) {
    const uint64_t seed =
        cfg.seed * 1315423911u + static_cast<uint64_t>(thread_idx) * 131 + i;
    // Stagger first arrivals across the interval so conns don't align.
    const uint64_t first =
        interval_ns * (static_cast<uint64_t>(i) + 1) / (nconns + 1);
    conns.push_back(
        std::make_unique<Conn>(cfg.port, interval_ns, first, cfg, seed));
  }
  ready.arrive_and_wait();  // completion step stamps t0_out
  const Clock::time_point t0 = t0_out;
  const uint64_t drain_deadline_ns = end_ns + 10'000'000'000ull;
  std::vector<pollfd> pfds(conns.size());
  bool scheduling = true;
  for (;;) {
    uint64_t t = ns_since(t0);
    if (scheduling && t >= end_ns) scheduling = false;
    uint64_t next_wake = ~0ull;
    bool idle = true;
    for (auto& cp : conns) {
      Conn& c = *cp;
      if (c.dead) continue;
      if (scheduling) {
        while (c.next_due <= t) {
          schedule_unit(c, cfg, c.next_due);
          c.next_due += c.interval;
        }
        next_wake = std::min(next_wake, c.next_due);
      }
      if (!c.out.empty()) try_write(c, res);
      if (!c.out.empty() || !c.inflight.empty()) idle = false;
    }
    if (!scheduling && idle) break;
    if (t > drain_deadline_ns) {
      for (auto& cp : conns) res.stragglers += cp->inflight.size();
      break;
    }
    int timeout_ms = 10;
    if (scheduling && next_wake != ~0ull) {
      t = ns_since(t0);
      // Ceil to a whole ms: a sub-ms wait must NOT truncate to a zero
      // timeout, or the generator busy-spins and starves the server on
      // small machines. Waking up to 1 ms late is honest — lateness is
      // charged to the schedule, not hidden.
      timeout_ms =
          next_wake > t
              ? static_cast<int>((next_wake - t + 999'999ull) / 1'000'000ull)
              : 0;
      if (timeout_ms > 10) timeout_ms = 10;
    }
    size_t n = 0;
    for (auto& cp : conns) {
      if (cp->dead) continue;
      pfds[n].fd = cp->client.fd();
      pfds[n].events =
          static_cast<short>(POLLIN | (cp->out.empty() ? 0 : POLLOUT));
      pfds[n].revents = 0;
      ++n;
    }
    if (n == 0) break;
    if (::poll(pfds.data(), n, timeout_ms) <= 0) continue;
    size_t i = 0;
    for (auto& cp : conns) {
      if (cp->dead) continue;
      const short re = pfds[i++].revents;
      if (re & POLLOUT) try_write(*cp, res);
      if (re & (POLLIN | POLLHUP | POLLERR)) try_read(*cp, t0, res);
    }
  }
  return res;
}

/// Extract the `n` slowest records (by total_ns) from a TRACE_DUMP JSON
/// document as a JSON array, preserving each record verbatim. The dump's
/// "records" array is already ring+board deduplicated, so a brace-depth
/// scan over it is enough — no JSON parser needed for our own output.
std::string slowest_traces_json(const std::string& dump, size_t n) {
  std::vector<std::pair<uint64_t, std::string>> recs;
  size_t pos = dump.find("\"records\": [");
  if (pos == std::string::npos) return "[]";
  pos += 12;
  int depth = 0;
  size_t obj_start = 0;
  for (size_t i = pos; i < dump.size(); ++i) {
    const char ch = dump[i];
    if (ch == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (ch == '}') {
      if (depth > 0 && --depth == 0) {
        std::string obj = dump.substr(obj_start, i - obj_start + 1);
        uint64_t total = 0;
        const size_t tp = obj.find("\"total_ns\": ");
        if (tp != std::string::npos)
          total = std::strtoull(obj.c_str() + tp + 12, nullptr, 10);
        recs.emplace_back(total, std::move(obj));
      }
    } else if (ch == ']' && depth == 0) {
      break;  // end of the records array
    }
  }
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (recs.size() > n) recs.resize(n);
  std::string out = "[";
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i > 0) out += ", ";
    out += recs[i].second;
  }
  return out + "]";
}

/// Prefill every other key over the wire (pipelined) so the structure sits
/// at half occupancy, as in the paper's setup.
void prefill_wire(uint16_t port, KeyT key_range) {
  net::Client c(port);
  net::Pipeline p(c);
  for (KeyT k = 1; k <= key_range; k += 2) {
    p.insert(k, k);
    if (p.queued() >= 512) p.collect();
  }
  p.collect();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 1 << 16;
  if (!args.has("--duration")) base.duration_ms = 1000;
  if (!args.has("--zipf")) base.zipf_theta = 0.99;
  json_init(args, "fig7_server", base);

  DriverConfig cfg;
  cfg.conns = static_cast<int>(args.get_long("--conns", 64));
  cfg.clients = static_cast<int>(args.get_long("--clients", 4));
  cfg.rate = static_cast<uint64_t>(args.get_long("--rate", 40000));
  cfg.duration_ms = base.duration_ms;
  cfg.key_range = base.key_range;
  cfg.rq_size = base.rq_size;
  cfg.txn_ops = static_cast<int>(args.get_long("--txnops", 4));
  cfg.zipf_theta = base.zipf_theta;
  cfg.seed = base.seed;
  if (cfg.clients > cfg.conns) cfg.clients = cfg.conns;

  net::ServerOptions sopt;
  // A fixed --port lets a live viewer (examples/bref_top) attach to the
  // scenario server; the default ephemeral port keeps CI runs isolated.
  sopt.port = static_cast<uint16_t>(args.get_long("--port", 0));
  sopt.workers = static_cast<int>(args.get_long("--workers", 4));
  sopt.shards = static_cast<size_t>(args.get_long("--shards", 4));
  sopt.impl = args.get_str("--impl", "Bundle-skiplist");
  sopt.key_lo = 0;
  sopt.key_hi = cfg.key_range + 2;
  sopt.maintenance = !args.has("--no-maintain");
  sopt.guard.max_wave_frames = static_cast<uint32_t>(args.get_long(
      "--wave-budget", static_cast<long>(sopt.guard.max_wave_frames)));
  sopt.guard.scan_chunk_keys = static_cast<size_t>(args.get_long(
      "--scan-chunk", static_cast<long>(sopt.guard.scan_chunk_keys)));

  // A Run is one measured pass: a mix, an offered rate, and optionally a
  // background whole-keyspace scanner. The guard scenarios are pairs whose
  // second member perturbs exactly one variable (rate, or the scanner) so
  // the acceptance gates can compare like with like.
  struct Run {
    Scenario mix;
    const char* label;
    uint64_t rate;
    bool scanner;
    bool trace;
  };
  const bool trace_default = args.get_str("--trace", "on") != std::string("off");
  const uint32_t trace_every =
      static_cast<uint32_t>(args.get_long("--trace-every", 128));
  const uint32_t trace_threshold_us =
      static_cast<uint32_t>(args.get_long("--trace-threshold-us", 1000));
  const std::string which = args.get_str("--scenario", "all");
  std::vector<Run> runs;
  if (which == "point" || which == "all")
    runs.push_back({kPoint, "point", cfg.rate, false, trace_default});
  if (which == "mixed" || which == "all")
    runs.push_back({kMixed, "mixed", cfg.rate, false, trace_default});
  if (which == "overload") {
    runs.push_back({kPoint, "overload-1x", cfg.rate, false, trace_default});
    runs.push_back({kPoint, "overload-5x", cfg.rate * 5, false, trace_default});
  }
  if (which == "scan") {
    runs.push_back({kPoint, "scan-off", cfg.rate, false, trace_default});
    runs.push_back({kPoint, "scan-on", cfg.rate, true, trace_default});
  }
  if (which == "trace") {
    runs.push_back({kPoint, "trace-off", cfg.rate, false, false});
    runs.push_back({kPoint, "trace-on", cfg.rate, false, true});
  }
  if (runs.empty()) {
    std::fprintf(
        stderr,
        "unknown --scenario %s (point|mixed|all|overload|scan|trace)\n",
        which.c_str());
    return 1;
  }

  std::printf("=== Figure 7: bref-server open-loop tail latency ===\n");
  std::printf("# impl=%s shards=%zu workers=%d conns=%d clients=%d "
              "rate=%llu/s duration=%dms keyrange=%lld zipf=%.2f\n",
              sopt.impl.c_str(), sopt.shards, sopt.workers, cfg.conns,
              cfg.clients, static_cast<unsigned long long>(cfg.rate),
              cfg.duration_ms, static_cast<long long>(cfg.key_range),
              cfg.zipf_theta);
  std::printf("%12s %10s %10s %9s %9s %9s %9s %8s %6s\n", "mix",
              "offered/s", "goodput/s", "p50us", "p99us", "p999us", "maxus",
              "shed", "err");

  const std::string metrics_out = args.get_str("--metrics-out", "");
  std::string last_metrics;  // latest mid-run Prometheus scrape

  for (const Run& run : runs) {
    cfg.mix = run.mix;
    cfg.rate = run.rate;
    cfg.trace = run.trace;
    net::Server server(sopt);  // fresh server per scenario: clean stats
    server.start();
    cfg.port = server.port();
    prefill_wire(cfg.port, cfg.key_range);
    {
      // Traced runs use the configured capture policy; untraced runs
      // disarm capture entirely (reservoir 0 + no threshold) so the
      // trace-off side of the overhead gate does no clock reads at all.
      net::Client pc(cfg.port);
      if (run.trace)
        pc.trace_config(trace_every, trace_threshold_us);
      else
        pc.trace_config(0, UINT32_MAX);
    }

    // Stage-attribution brackets: the server's queue/execute/flush
    // histograms are process-global, so delta them across the scenario.
    const obs::HistogramSnapshot stage_before[3] = {
        net::stage_hist(0).snapshot(), net::stage_hist(1).snapshot(),
        net::stage_hist(2).snapshot()};

    const uint64_t end_ns =
        static_cast<uint64_t>(cfg.duration_ms) * 1'000'000ull;
    // t0 is stamped once every thread has connected (barrier completion),
    // so connect-storm time is not billed to the first scheduled arrivals.
    Clock::time_point t0{};
    std::barrier ready(cfg.clients, [&]() noexcept { t0 = now(); });
    std::vector<DriverResult> results(cfg.clients);
    std::vector<std::thread> threads;
    const int per = cfg.conns / cfg.clients;
    const int extra = cfg.conns % cfg.clients;
    for (int i = 0; i < cfg.clients; ++i) {
      const int nconns = per + (i < extra ? 1 : 0);
      threads.emplace_back([&, i, nconns] {
        results[i] = drive(cfg, i, nconns, ready, t0, end_ns);
      });
    }
    // Background scanner ("scan-on"): one connection issuing
    // whole-keyspace RANGEs for the life of the run, with a short think
    // time between scans. Back-to-back scans would re-measure raw memory
    // bandwidth (hundreds of MB/s of response traffic); the think time
    // keeps a scan in flight a sizable fraction of the run — well above
    // the 1% a p99 needs — while the gate measures what it claims to:
    // point-op latency while a chunked cooperative scan executes.
    std::atomic<bool> scan_stop{false};
    std::atomic<uint64_t> bg_scans{0};
    std::thread scanner;
    if (run.scanner) {
      scanner = std::thread([&] {
        try {
          net::Client sc(cfg.port);
          RangeSnapshot snap;
          while (!scan_stop.load(std::memory_order_relaxed)) {
            sc.range(0, cfg.key_range + 2, snap);
            bg_scans.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
          }
        } catch (const net::ClientError&) {
          // Tear-down racing the last scan; the bg_scans count stands.
        }
      });
    }
    // Mid-run monitor: scrape METRICS and STATS over a connection of its
    // own while every driver connection is live — the regression check
    // for live-connection visibility (a mid-run "connections": 0 was
    // exactly the BENCH_6 bug) and the payload --metrics-out archives.
    std::string midrun_metrics, midrun_stats;
    std::thread monitor([&] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(cfg.duration_ms / 2, 1)));
      try {
        net::Client mc(cfg.port);
        midrun_metrics = mc.metrics();
        midrun_stats = mc.stats();
      } catch (const net::ClientError&) {
        // A scrape failure shows up as midrun_connections: -1 below.
      }
    });
    for (auto& th : threads) th.join();
    monitor.join();
    const double elapsed = elapsed_s(t0);
    scan_stop.store(true, std::memory_order_relaxed);
    if (scanner.joinable()) scanner.join();
    if (!midrun_metrics.empty()) last_metrics = midrun_metrics;
    long midrun_conns = -1;
    const size_t cpos = midrun_stats.find("\"connections\": ");
    if (cpos != std::string::npos)
      midrun_conns = std::atol(midrun_stats.c_str() + cpos + 15);

    DriverResult total;
    for (auto& r : results) {
      total.latency += r.latency;
      total.frames += r.frames;
      total.shed += r.shed;
      total.errors += r.errors;
      total.stragglers += r.stragglers;
    }
    Measured m;
    m.ops = total.latency.count;
    m.mops = static_cast<double>(m.ops) / elapsed / 1e6;
    m.set_latencies(total.latency);

    // Per-stage server-side p99s over this scenario (µs). Their sum is a
    // lower bound on the end-to-end p99 the driver saw: the wire path is
    // queue -> execute -> flush, and the client adds schedule + network
    // delay on top.
    double stage_p99_us[3];
    for (int s = 0; s < 3; ++s) {
      obs::HistogramSnapshot d = net::stage_hist(s).snapshot();
      d -= stage_before[s];
      stage_p99_us[s] = d.quantile(0.99) / 1000.0;
    }

    const std::string server_stats = server.stats_json();
    // The 10 slowest requests of the scenario with their per-stage
    // timelines — the all-time board inside the dump guarantees the true
    // tail is present even after ring churn.
    std::string trace_slowest = "[]";
    if (run.trace) {
      try {
        net::Client tc(cfg.port);
        trace_slowest = slowest_traces_json(tc.trace_dump(), 10);
      } catch (const net::ClientError&) {
        // Dump is best-effort; an empty "slowest" fails the gate loudly.
      }
    }
    server.stop();

    // shed_pct is over unit-ending replies: shed frames vs accepted
    // samples (every shed frame would have ended its unit in these mixes).
    const double shed_pct =
        total.shed + total.latency.count > 0
            ? 100.0 * static_cast<double>(total.shed) /
                  static_cast<double>(total.shed + total.latency.count)
            : 0.0;
    char mix_str[48];
    std::snprintf(mix_str, sizeof mix_str, "%s-%d-%d-%d-%d", run.label,
                  run.mix.u_pct, run.mix.c_pct, run.mix.rq_pct,
                  run.mix.txn_pct);
    std::printf("%12s %10llu %10.0f %9.1f %9.1f %9.1f %9.1f %8llu %6llu\n",
                run.label, static_cast<unsigned long long>(cfg.rate),
                m.mops * 1e6, m.p50_us, m.p99_us, m.p999_us, m.max_us,
                static_cast<unsigned long long>(total.shed),
                static_cast<unsigned long long>(total.errors +
                                                total.stragglers));
    char extra_buf[768];
    std::snprintf(
        extra_buf, sizeof extra_buf,
        "\"conns\": %d, \"clients\": %d, \"offered_rate\": %llu, "
        "\"achieved_rate\": %.0f, \"goodput_rate\": %.0f, \"shed\": %llu, "
        "\"shed_pct\": %.2f, \"bg_scans\": %llu, \"frames\": %llu, "
        "\"errors\": %llu, \"stragglers\": %llu, "
        "\"midrun_connections\": %ld, \"queue_p99_us\": %.1f, "
        "\"execute_p99_us\": %.1f, \"flush_p99_us\": %.1f, \"server\": ",
        cfg.conns, cfg.clients, static_cast<unsigned long long>(cfg.rate),
        m.mops * 1e6, m.mops * 1e6,
        static_cast<unsigned long long>(total.shed), shed_pct,
        static_cast<unsigned long long>(
            bg_scans.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(total.frames),
        static_cast<unsigned long long>(total.errors),
        static_cast<unsigned long long>(total.stragglers), midrun_conns,
        stage_p99_us[0], stage_p99_us[1], stage_p99_us[2]);
    std::string extra_json = extra_buf + server_stats;
    extra_json += ", \"trace\": {\"enabled\": ";
    extra_json += run.trace ? "true" : "false";
    extra_json += ", \"slowest\": " + trace_slowest + "}";
    JsonSink::instance().record(sopt.impl, mix_str, cfg.conns, m, extra_json);
    if (total.errors > 0) {
      std::fprintf(stderr, "fig7_server: %llu connection errors\n",
                   static_cast<unsigned long long>(total.errors));
      JsonSink::instance().flush();
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fig7_server: cannot open %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(last_metrics.data(), 1, last_metrics.size(), f);
    std::fclose(f);
    std::printf("# metrics: wrote %zu bytes of mid-run exposition to %s\n",
                last_metrics.size(), metrics_out.c_str());
  }
  std::printf("shape-check: achieved should track offered while p99 stays "
              "low; past saturation the open-loop tail grows without "
              "dragging the offered rate down. queue/execute/flush p99s in "
              "the JSON record attribute the server-side share of the "
              "tail.\n");
  JsonSink::instance().flush();
  return 0;
}
