// Figure 4: TPC-C on MiniDB (DBx1000 stand-in; DESIGN.md §1) — throughput
// of *index operations* with the library's structures serving as the
// database indexes. Transaction mix: NEW_ORDER 50%, PAYMENT 45%, DELIVERY
// 5%; PAYMENT looks customers up by name (range query) 60% of the time;
// DELIVERY scans the last 100 new-orders of a district for the oldest
// undelivered order and deletes it.
//
// Paper config: 10 warehouses, threads up to 192. Quick defaults: 2
// warehouses, threads {1,2,4}; pass --warehouses 10 --threads ... to match.

#include <atomic>
#include <barrier>
#include <memory>
#include <thread>

#include "db/tpcc.h"
#include "harness.h"

namespace {

using namespace bref;
using namespace bref::bench;

bool g_full_mix = false;  // --fullmix: spec mix 45/43/4/4/4 (see tpcc.h)

template <typename Index>
double run_tpcc(int threads, const db::TpccScale& scale, int duration_ms,
                uint64_t seed) {
  auto dbp = std::make_unique<db::TpccDb<Index>>(scale);
  std::vector<CachePadded<db::TpccStats>> stats(threads);
  std::atomic<bool> stop{false};
  std::barrier start(threads + 1);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(seed + t * 7919);
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // One RAII session bundle per transaction; the pinned-id form
        // borrows the driver's dense id, so begin/commit is free.
        db::Txn txn = dbp->begin_txn(t);
        if (g_full_mix)
          dbp->run_full_mix_txn(txn, rng, *stats[t]);
        else
          dbp->run_mixed_txn(txn, rng, *stats[t]);
        txn.commit();
      }
    });
  }
  start.arrive_and_wait();
  const auto t0 = now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : ts) th.join();
  uint64_t index_ops = 0;
  for (auto& s : stats) index_ops += s->index_ops;
  return static_cast<double>(index_ops) / elapsed_s(t0) / 1e6;
}

template <typename BundleT, typename UnsafeT, typename EbrT, typename EbrLfT,
          typename RluT>
void run_family(const char* tag, const std::vector<int>& thread_counts,
                const db::TpccScale& scale, int duration_ms, uint64_t seed) {
  std::printf("\n-- Figure 4 (%s indexes): TPC-C index ops Mops/s --\n", tag);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "threads", "Unsafe", "EBR-RQ",
              "EBR-RQ-LF", "RLU", "Bundle");
  for (int threads : thread_counts) {
    double u = run_tpcc<UnsafeT>(threads, scale, duration_ms, seed);
    double e = run_tpcc<EbrT>(threads, scale, duration_ms, seed);
    double elf = run_tpcc<EbrLfT>(threads, scale, duration_ms, seed);
    double r = run_tpcc<RluT>(threads, scale, duration_ms, seed);
    double b = run_tpcc<BundleT>(threads, scale, duration_ms, seed);
    std::printf("%8d %10.3f %10.3f %10.3f %10.3f %10.3f\n", threads, u, e,
                elf, r, b);
    if (threads == thread_counts.back()) {
      double best = std::max(std::max(e, elf), r);
      std::printf("shape-check [@%d threads]: Bundle/best-competitor = "
                  "%.2fx (paper: ~1.2x at high thread counts); "
                  "Bundle/Unsafe = %.2fx\n",
                  threads, b / best, b / u);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bref;
  using namespace bref::bench;
  Args args(argc, argv);
  db::TpccScale scale;
  scale.warehouses = static_cast<int>(args.get_long("--warehouses", 2));
  scale.customers_per_district =
      static_cast<int>(args.get_long("--customers", 300));
  scale.initial_orders_per_district =
      static_cast<int>(args.get_long("--orders", 100));
  const int duration_ms = static_cast<int>(args.get_long("--duration", 200));
  const auto thread_counts = args.get_int_list("--threads", {1, 2, 4});
  const uint64_t seed = args.get_long("--seed", 11);
  std::printf("=== Figure 4: DBx1000-substitute (MiniDB) + TPC-C ===\n");
  std::printf("# warehouses=%d customers/district=%d duration=%dms "
              "(NEW_ORDER 50%% / PAYMENT 45%% / DELIVERY 5%%)\n",
              scale.warehouses, scale.customers_per_district, duration_ms);
  g_full_mix = args.has("--fullmix");
  if (g_full_mix)
    std::printf("# --fullmix: NEW_ORDER 45%% / PAYMENT 43%% / ORDER_STATUS "
                "4%% / DELIVERY 4%% / STOCK_LEVEL 4%%\n");
  const std::string which = args.get_str("--index", "both");
  if (which == "sl" || which == "both")
    run_family<BundleSkipListSet, UnsafeSkipListSet, EbrRqSkipListSet,
               EbrRqLfSkipListSet, RluSkipListSet>(
        "skip list", thread_counts, scale, duration_ms, seed);
  if (which == "ct" || which == "both")
    run_family<BundleCitrusSet, UnsafeCitrusSet, EbrRqCitrusSet,
               EbrRqLfCitrusSet, RluCitrusSet>(
        "citrus tree", thread_counts, scale, duration_ms, seed);
  return 0;
}
