#pragma once
// Shared driver for Figure 2 (throughput vs thread count across workload
// mixes) — instantiated for the skip-list and Citrus-tree families.
// Prints one panel per U-C-RQ mix with one column per technique, matching
// the paper's series, plus a shape-check summary of who wins each panel.
//
// The competitor set is derived from the ImplRegistry at startup rather
// than hard-coded template parameter lists: every builtin of the panel's
// base structure, plus every builtin that brings its own structure kind
// (the LFCA tree was the first), joins the figure automatically. Workers
// run through TypedSession<AnyOrderedSet>, so a registry-built structure
// costs one virtual call per operation uniformly across the columns.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/builtin_impls.h"
#include "api/registry.h"
#include "harness.h"

namespace bref::bench {

struct Mix {
  int u, c, rq;
};

inline const std::vector<Mix>& fig2_mixes() {
  static const std::vector<Mix> mixes{
      {2, 88, 10}, {10, 80, 10}, {50, 40, 10}, {90, 0, 10}, {0, 90, 10}};
  return mixes;
}

/// True when a builtin's structure is not one of the three base structures
/// the paper instantiates every technique over — i.e. the technique *is*
/// its own structure (LFCA) and belongs in every panel.
inline bool self_structured(const ImplDescriptor& d) {
  return d.structure != "list" && d.structure != "skiplist" &&
         d.structure != "citrus";
}

/// The competitor columns for a panel over `structure`: the registry's
/// builtins of that structure plus the self-structured ones, ordered to
/// match the paper's column layout — the Unsafe baseline first, Bundle
/// last, everything else in registration order between them.
inline std::vector<ImplDescriptor> competitors_for(
    const std::string& structure) {
  std::vector<ImplDescriptor> out;
  for (const auto& d : ImplRegistry::instance().descriptors())
    if (d.builtin && (d.structure == structure || self_structured(d)))
      out.push_back(d);
  auto rank = [](const ImplDescriptor& d) {
    if (d.technique == "Unsafe") return 0;
    if (d.technique == "Bundle") return 2;
    return 1;
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](const ImplDescriptor& a, const ImplDescriptor& b) {
                     return rank(a) < rank(b);
                   });
  return out;
}

inline int run_fig2(const char* structure, const char* tag, int argc,
                    char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;  // quick default
  if (!args.has("--duration")) base.duration_ms = 150;
  json_init(args, (std::string("fig2_") + structure).c_str(), base);

  const auto competitors = competitors_for(structure);

  std::printf("=== Figure 2: %s throughput (Mops/s), workloads U-C-RQ ===\n",
              tag);
  print_header(tag, base);

  for (const Mix& mix : fig2_mixes()) {
    Config cfg = base;
    cfg.u_pct = mix.u;
    cfg.c_pct = mix.c;
    cfg.rq_pct = mix.rq;
    std::printf("\n-- %s, %d-%d-%d --\n", tag, mix.u, mix.c, mix.rq);
    std::printf("%8s", "threads");
    for (const auto& d : competitors)
      std::printf(" %13s", self_structured(d) ? d.name.c_str()
                                              : d.technique.c_str());
    std::printf("\n");
    double best_bundle = 0, best_competitor = 0;
    char mix_str[32];
    std::snprintf(mix_str, sizeof mix_str, "%d-%d-%d", mix.u, mix.c, mix.rq);
    for (int threads : cfg.thread_counts) {
      std::printf("%8d", threads);
      for (const auto& d : competitors) {
        const Measured md = measure_detailed(
            [&] { return ImplRegistry::instance().create(d.name); }, threads,
            cfg);
        const double mops = md.mops;
        JsonSink::instance().record(d.name, mix_str, threads, md);
        std::printf(" %13.3f", mops);
        if (threads == cfg.thread_counts.back()) {
          if (d.technique == std::string("Bundle")) {
            best_bundle = mops;
          } else if (d.caps.linearizable_rq && mops > best_competitor) {
            best_competitor = mops;
          }
        }
      }
      std::printf("\n");
    }
    std::printf("shape-check [%d-%d-%d @max threads]: Bundle/best-"
                "linearizable-competitor = %.2fx %s\n",
                mix.u, mix.c, mix.rq, best_bundle / best_competitor,
                best_bundle >= best_competitor
                    ? "(Bundle wins or ties)"
                    : "(competitor wins - paper expects this only in the "
                      "90-0-10 / 0-90-10 corner cases)");
  }
  JsonSink::instance().flush();
  return 0;
}

}  // namespace bref::bench
