#pragma once
// Shared driver for Figure 2 (throughput vs thread count across workload
// mixes) — instantiated for the skip list and the Citrus tree families.
// Prints one panel per U-C-RQ mix with one column per technique, matching
// the paper's series, plus a shape-check summary of who wins each panel.

#include <memory>
#include <string>
#include <vector>

#include "harness.h"

namespace bref::bench {

struct Mix {
  int u, c, rq;
};

inline const std::vector<Mix>& fig2_mixes() {
  static const std::vector<Mix> mixes{
      {2, 88, 10}, {10, 80, 10}, {50, 40, 10}, {90, 0, 10}, {0, 90, 10}};
  return mixes;
}

template <typename BundleT, typename UnsafeT, typename EbrT, typename EbrLfT,
          typename RluT>
int run_fig2(const char* structure_tag, int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--keyrange")) base.key_range = 20000;  // quick default
  if (!args.has("--duration")) base.duration_ms = 150;

  std::printf("=== Figure 2: %s throughput (Mops/s), workloads U-C-RQ ===\n",
              structure_tag);
  print_header(structure_tag, base);

  const char* names[5] = {"Unsafe", "EBR-RQ", "EBR-RQ-LF", "RLU", "Bundle"};
  for (const Mix& mix : fig2_mixes()) {
    Config cfg = base;
    cfg.u_pct = mix.u;
    cfg.c_pct = mix.c;
    cfg.rq_pct = mix.rq;
    std::printf("\n-- %s, %d-%d-%d --\n", structure_tag, mix.u, mix.c,
                mix.rq);
    std::printf("%8s %10s %10s %10s %10s %10s\n", "threads", names[0],
                names[1], names[2], names[3], names[4]);
    double best_bundle = 0, best_competitor = 0;
    for (int threads : cfg.thread_counts) {
      double m[5];
      m[0] = measure([] { return std::make_unique<UnsafeT>(); }, threads, cfg);
      m[1] = measure([] { return std::make_unique<EbrT>(); }, threads, cfg);
      m[2] = measure([] { return std::make_unique<EbrLfT>(); }, threads, cfg);
      m[3] = measure([] { return std::make_unique<RluT>(); }, threads, cfg);
      m[4] = measure([] { return std::make_unique<BundleT>(); }, threads, cfg);
      std::printf("%8d %10.3f %10.3f %10.3f %10.3f %10.3f\n", threads, m[0],
                  m[1], m[2], m[3], m[4]);
      if (threads == cfg.thread_counts.back()) {
        best_bundle = m[4];
        best_competitor = std::max(std::max(m[1], m[2]), m[3]);
      }
    }
    std::printf("shape-check [%d-%d-%d @max threads]: Bundle/best-"
                "linearizable-competitor = %.2fx %s\n",
                mix.u, mix.c, mix.rq, best_bundle / best_competitor,
                best_bundle >= best_competitor
                    ? "(Bundle wins or ties)"
                    : "(competitor wins - paper expects this only in the "
                      "90-0-10 / 0-90-10 corner cases)");
  }
  return 0;
}

}  // namespace bref::bench
