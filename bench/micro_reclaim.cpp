// Reclamation-substrate microbenches: EBR (DEBRA-style) vs hazard pointers.
//
// Section 7 / supplementary B justify building bundling's reclamation on
// EBR: (a) an epoch pin is one per *operation* while hazard pointers cost
// one fenced announce per *pointer hop*, and (b) a range query's snapshot
// path is unbounded, which a fixed slot set cannot protect at all. These
// benches quantify (a); (b) is an API impossibility, documented in
// src/reclaim/hazard.h.

#include <benchmark/benchmark.h>

#include <atomic>

#include "epoch/ebr.h"
#include "reclaim/hazard.h"

namespace {

using namespace bref;

struct Node {
  std::atomic<Node*> next{nullptr};
  int64_t payload = 0;
};

// ---- per-operation protection cost -----------------------------------------

void BM_Ebr_GuardEnterExit(benchmark::State& state) {
  static Ebr ebr;
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    Ebr::Guard g(ebr, tid);
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_Ebr_GuardEnterExit)->ThreadRange(1, 4);

void BM_Hp_ProtectClear(benchmark::State& state) {
  static HazardPointers<Node, 2> hp;
  static Node node;
  static std::atomic<Node*> src{&node};
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    Node* p = hp.protect(tid, 0, src);
    benchmark::DoNotOptimize(p);
    hp.clear_slot(tid, 0);
  }
}
BENCHMARK(BM_Hp_ProtectClear)->ThreadRange(1, 4);

// ---- traversal protection: one pin vs per-hop announces ---------------------

constexpr int kChainLen = 64;

Node* build_chain() {
  Node* head = new Node;
  Node* cur = head;
  for (int i = 1; i < kChainLen; ++i) {
    Node* n = new Node;
    n->payload = i;
    cur->next.store(n, std::memory_order_relaxed);
    cur = n;
  }
  return head;
}

void BM_Ebr_ChainTraversal(benchmark::State& state) {
  static Ebr ebr;
  static Node* head = build_chain();
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    Ebr::Guard g(ebr, tid);  // one pin covers the whole walk
    int64_t sum = 0;
    for (Node* n = head; n != nullptr;
         n = n->next.load(std::memory_order_acquire))
      sum += n->payload;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kChainLen);
}
BENCHMARK(BM_Ebr_ChainTraversal)->ThreadRange(1, 4);

void BM_Hp_ChainTraversal(benchmark::State& state) {
  static HazardPointers<Node, 2> hp;
  static Node* head = build_chain();
  const int tid = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    // Hand-over-hand: announce each hop before following it.
    int64_t sum = 0;
    int slot = 0;
    hp.announce(tid, slot, head);
    for (Node* n = head; n != nullptr;) {
      sum += n->payload;
      Node* nx = n->next.load(std::memory_order_acquire);
      if (nx != nullptr) hp.announce(tid, slot ^ 1, nx);
      slot ^= 1;
      n = nx;
    }
    hp.clear(tid);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kChainLen);
}
BENCHMARK(BM_Hp_ChainTraversal)->ThreadRange(1, 4);

// ---- retire/free throughput -------------------------------------------------

void BM_Ebr_RetireFree(benchmark::State& state) {
  Ebr ebr;
  for (auto _ : state) {
    Ebr::Guard g(ebr, 0);
    ebr.retire(0, new Node);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ebr_RetireFree);

void BM_Hp_RetireFree(benchmark::State& state) {
  HazardPointers<Node, 2> hp;
  hp.announce(0, 0, nullptr);  // register the thread
  for (auto _ : state) hp.retire(0, new Node);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hp_RetireFree);

}  // namespace

BENCHMARK_MAIN();
