// Micro-benchmarks (google-benchmark) for the building blocks: global
// timestamp, bundle operations at varying history depth, EBR pin/unpin,
// DCSS vs CAS, RLU and RCU read-side sections, RQ announce protocol.
// These quantify the per-operation costs the paper's design arguments rely
// on (e.g. "contains is uninstrumented", "updates pay one FAA + bundle
// prepend", "EBR-RQ-LF pays a DCSS per stamp").

#include <benchmark/benchmark.h>

#include "common/dcss.h"
#include "core/bundle.h"
#include "core/entry_pool.h"
#include "core/global_timestamp.h"
#include "core/rq_tracker.h"
#include "epoch/ebr.h"
#include "rcu/urcu.h"
#include "rlu/rlu.h"

namespace {

using namespace bref;

struct FakeNode {
  int id;
};

void BM_GlobalTs_Read(benchmark::State& state) {
  GlobalTimestamp gts;
  for (auto _ : state) benchmark::DoNotOptimize(gts.read());
}
BENCHMARK(BM_GlobalTs_Read);

void BM_GlobalTs_Advance(benchmark::State& state) {
  static GlobalTimestamp gts;  // shared across benchmark threads
  for (auto _ : state) benchmark::DoNotOptimize(gts.advance());
}
BENCHMARK(BM_GlobalTs_Advance)->Threads(1)->Threads(2)->Threads(4);

void BM_GlobalTs_RelaxedUpdateTs(benchmark::State& state) {
  GlobalTimestamp gts(50);
  for (auto _ : state) benchmark::DoNotOptimize(gts.update_ts(0));
}
BENCHMARK(BM_GlobalTs_RelaxedUpdateTs);

void BM_Bundle_PrepareFinalize(benchmark::State& state) {
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  timestamp_t ts = 0;
  for (auto _ : state) {
    auto* e = b.prepare(0, &n);
    Bundle<FakeNode>::finalize(e, ++ts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bundle_PrepareFinalize);

void BM_Bundle_DereferenceDepth(benchmark::State& state) {
  // Dereference cost as a function of how deep the satisfying entry sits —
  // the paper's minimality argument: a pruned bundle answers at depth 1.
  const int depth = static_cast<int>(state.range(0));
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  for (int i = 1; i <= depth; ++i)
    Bundle<FakeNode>::finalize(b.prepare(0, &n), 100 + i);
  for (auto _ : state) benchmark::DoNotOptimize(b.dereference(100));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bundle_DereferenceDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The full steady-state update hot path — prepare, finalize, periodic
// prune, EBR-driven recycle — with the entry pool on vs ablated to
// new/delete. Each thread churns its own bundle (the allocator, not bundle
// contention, is what's under test); the pooled path should hold its
// throughput as threads grow while the malloc path pays the allocator on
// every entry.
void pool_on(const benchmark::State&) {
  EntryPoolRegistry::instance().set_pooling_enabled(true);
}
void pool_off(const benchmark::State&) {
  EntryPoolRegistry::instance().set_pooling_enabled(false);
}

void update_hot_path(benchmark::State& state) {
  static Ebr ebr;
  const int tid = state.thread_index();
  Bundle<FakeNode> b;
  FakeNode n{0};
  b.init(&n, 0);
  timestamp_t ts = 0;
  for (auto _ : state) {
    ebr.pin(tid);
    auto* e = b.prepare(tid, &n);
    Bundle<FakeNode>::finalize(e, ++ts);
    // Bounded history, as under the background cleaner: prune everything a
    // ts-8 snapshot no longer needs, letting EBR recycle it to the pool.
    if ((ts & 15) == 0) b.reclaim_older(ts - 8, ebr, tid);
    ebr.unpin(tid);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Bundle_UpdateHotPath_Pooled(benchmark::State& state) {
  update_hot_path(state);
}
BENCHMARK(BM_Bundle_UpdateHotPath_Pooled)
    ->Setup(pool_on)
    ->Threads(1)
    ->Threads(8);

void BM_Bundle_UpdateHotPath_Malloc(benchmark::State& state) {
  update_hot_path(state);
}
BENCHMARK(BM_Bundle_UpdateHotPath_Malloc)
    ->Setup(pool_off)
    ->Teardown(pool_on)
    ->Threads(1)
    ->Threads(8);

void BM_Ebr_PinUnpin(benchmark::State& state) {
  static Ebr ebr;
  const int tid = state.thread_index();
  for (auto _ : state) {
    ebr.pin(tid);
    ebr.unpin(tid);
  }
}
BENCHMARK(BM_Ebr_PinUnpin)->Threads(1)->Threads(2)->Threads(4);

void BM_Dcss_Uncontended(benchmark::State& state) {
  DcssProvider d;
  std::atomic<uint64_t> a1{1}, a2{0};
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.dcss(0, a1, 1, a2, v, v + 1));
    ++v;
  }
}
BENCHMARK(BM_Dcss_Uncontended);

void BM_Cas_Baseline(benchmark::State& state) {
  std::atomic<uint64_t> a{0};
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare_exchange_strong(v, v + 1));
    v = a.load(std::memory_order_relaxed);
  }
}
BENCHMARK(BM_Cas_Baseline);

void BM_Urcu_ReadSection(benchmark::State& state) {
  static Urcu rcu;
  const int tid = state.thread_index();
  for (auto _ : state) {
    rcu.read_lock(tid);
    rcu.read_unlock(tid);
  }
}
BENCHMARK(BM_Urcu_ReadSection)->Threads(1)->Threads(2);

void BM_Rlu_ReadSession(benchmark::State& state) {
  static Rlu rlu;
  const int tid = state.thread_index();
  for (auto _ : state) {
    Rlu::Session s(rlu, tid);
    s.unlock();
  }
}
BENCHMARK(BM_Rlu_ReadSession)->Threads(1)->Threads(2);

void BM_RqTracker_BeginEnd(benchmark::State& state) {
  static GlobalTimestamp gts;
  static RqTracker rq;
  const int tid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rq.begin(tid, gts));
    rq.end(tid);
  }
}
BENCHMARK(BM_RqTracker_BeginEnd)->Threads(1)->Threads(2);

}  // namespace

BENCHMARK_MAIN();
