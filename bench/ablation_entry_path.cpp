// Ablation: the range-query entry-path optimization (DESIGN.md §4).
//
// Section 4 of the paper notes that minimality "would also hold for the
// traversal phase if we would have used bundles from the beginning of the
// list. However, ... for performance reasons we decide to avoid using
// bundles to reach the first node of the range"; Section 5 likewise keeps
// the skip list's index layers bundle-free and uses them only to route to
// the range. This bench quantifies both decisions by pitting the shipped
// range_query() (optimistic entry) against range_query_from_start() (all-
// bundle entry) on the same structures under a 50-0-50 workload.
//
// Expected shape: the optimistic entry wins by a factor that grows with key
// range (entry distance); the gap is larger for the skip list, whose index
// layers turn the entry walk into O(log n).

// A second axis ablates the *allocation* path of the entries themselves:
// the same mixed workload (update-heavy, cleaner running so entries
// recycle) with the per-thread entry pools (core/entry_pool.h) on vs
// bypassed to plain new/delete. Expected shape: pooled wins by more as
// threads grow (the allocator serializes), and pooled allocs/op collapses
// toward zero once the pool is warm while malloc pays one heap round-trip
// per entry.
//
// A third axis runs the same pooled-vs-malloc comparison on the EBR-RQ
// competitor's *nodes* (its updates paid one `new Node` each at the seed;
// now they pool through the limbo -> EBR -> owner-inbox pipeline), keeping
// the headline comparison allocator-for-allocator fair.

#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <thread>

#include "core/bundle_cleaner.h"
#include "harness.h"

namespace {

using namespace bref;
using namespace bref::bench;

/// Like run_mixed_trial, but range queries go through the selected entry
/// path on the concrete bundled type.
template <typename DS>
double measure_entry_path(int threads, const Config& cfg, bool from_start) {
  double total = 0;
  for (int run = 0; run < cfg.runs; ++run) {
    auto ds = std::make_unique<DS>();
    prefill(*ds, cfg.key_range);
    std::vector<CachePadded<uint64_t>> op_counts(threads);
    std::atomic<bool> stop{false};
    std::barrier start_barrier(threads + 1);
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        // Session for the uniform surface; the from-start entry path is an
        // ablation-only hook, reached through the underlying structure.
        TypedSession<DS> s(*ds, t);
        Xoshiro256 rng(cfg.seed * 977 + t);
        std::vector<std::pair<KeyT, ValT>> rq_out;
        rq_out.reserve(cfg.rq_size + 16);
        uint64_t ops = 0;
        start_barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t dice = rng.next_range(100);
          const KeyT k = 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
          if (dice < static_cast<uint64_t>(cfg.u_pct)) {
            if (rng.next_range(2) == 0)
              s.insert(k, k);
            else
              s.remove(k);
          } else if (from_start) {
            s.set().range_query_from_start(s.tid(), k, k + cfg.rq_size - 1,
                                           rq_out);
          } else {
            s.set().range_query(s.tid(), k, k + cfg.rq_size - 1, rq_out);
          }
          ++ops;
        }
        *op_counts[t] = ops;
      });
    }
    start_barrier.arrive_and_wait();
    const auto t0 = now();
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : ts) th.join();
    uint64_t ops = 0;
    for (auto& c : op_counts) ops += *c;
    total += static_cast<double>(ops) / elapsed_s(t0) / 1e6;
  }
  return total / cfg.runs;
}

template <typename DS>
void run_family(const char* tag, const Config& base,
                const std::vector<long>& key_ranges) {
  std::printf("\n-- %s: optimistic entry vs all-bundle entry (50-0-50, "
              "Mops/s) --\n", tag);
  std::printf("%10s %8s %12s %12s %10s\n", "keyrange", "threads", "optimistic",
              "from-start", "speedup");
  for (long kr : key_ranges) {
    Config cfg = base;
    cfg.key_range = kr;
    cfg.u_pct = 50;
    cfg.c_pct = 0;
    cfg.rq_pct = 50;
    for (int threads : cfg.thread_counts) {
      const double opt = measure_entry_path<DS>(threads, cfg, false);
      const double fs = measure_entry_path<DS>(threads, cfg, true);
      std::printf("%10ld %8d %12.3f %12.3f %9.2fx\n", kr, threads, opt, fs,
                  fs > 0 ? opt / fs : 0.0);
    }
  }
}

/// One cell of the pooled-vs-malloc axis: mixed trial on a reclaiming
/// structure with the cleaner pruning at 1 ms, entry pools forced on/off.
template <typename DS>
Measured measure_alloc_mode(int threads, const Config& cfg, bool pooled) {
  EntryPoolRegistry::instance().set_pooling_enabled(pooled);
  Measured m = measure_detailed(
      [&] { return std::make_unique<DS>(1, /*reclaim=*/true); }, threads, cfg,
      [](DS& ds, int th, const Config& c) {
        BundleCleaner<DS> cleaner(ds, std::chrono::milliseconds(1));
        Result r = run_mixed_trial(ds, th, c);
        cleaner.stop();
        return r;
      });
  EntryPoolRegistry::instance().set_pooling_enabled(true);
  return m;
}

template <typename DS>
void run_alloc_family(const char* tag, const char* impl, const Config& base) {
  Config cfg = base;
  cfg.u_pct = 90;
  cfg.c_pct = 0;
  cfg.rq_pct = 10;
  std::printf("\n-- %s: pooled vs malloc entry allocation (90-0-10, "
              "cleaner d=1ms) --\n", tag);
  std::printf("%8s %12s %12s %9s %16s %16s\n", "threads", "pooled", "malloc",
              "speedup", "pooled allocs/op", "malloc allocs/op");
  for (int threads : cfg.thread_counts) {
    const Measured pooled = measure_alloc_mode<DS>(threads, cfg, true);
    const Measured malloc_ = measure_alloc_mode<DS>(threads, cfg, false);
    JsonSink::instance().record(std::string(impl) + "-pooled", "90-0-10",
                                threads, pooled);
    JsonSink::instance().record(std::string(impl) + "-malloc", "90-0-10",
                                threads, malloc_);
    std::printf("%8d %12.3f %12.3f %8.2fx %16.6f %16.6f\n", threads,
                pooled.mops, malloc_.mops,
                malloc_.mops > 0 ? pooled.mops / malloc_.mops : 0.0,
                pooled.allocs_per_op, malloc_.allocs_per_op);
  }
}

/// One cell of the EBR-RQ node-allocation axis: same mixed trial, but the
/// competitor has no cleaner — its reclamation is the limbo prune cadence
/// plus EBR, which is exactly the path the node pools feed.
template <typename DS>
Measured measure_node_alloc_mode(int threads, const Config& cfg,
                                 bool pooled) {
  EntryPoolRegistry::instance().set_pooling_enabled(pooled);
  Measured m = measure_detailed([] { return std::make_unique<DS>(); },
                                threads, cfg);
  EntryPoolRegistry::instance().set_pooling_enabled(true);
  return m;
}

/// The competitor-side twin of run_alloc_family: EBR-RQ structures with
/// pooled nodes vs the seed's new/delete per update. Also reports the
/// limbo-scan overhead per query, which the --json record carries.
template <typename DS>
void run_ebrrq_alloc_family(const char* tag, const char* impl,
                            const Config& base) {
  Config cfg = base;
  cfg.u_pct = 90;
  cfg.c_pct = 0;
  cfg.rq_pct = 10;
  std::printf("\n-- %s: pooled vs malloc node allocation (90-0-10) --\n",
              tag);
  std::printf("%8s %12s %12s %9s %16s %16s %14s\n", "threads", "pooled",
              "malloc", "speedup", "pooled allocs/op", "malloc allocs/op",
              "limbo/query");
  for (int threads : cfg.thread_counts) {
    const Measured pooled = measure_node_alloc_mode<DS>(threads, cfg, true);
    const Measured malloc_ = measure_node_alloc_mode<DS>(threads, cfg, false);
    JsonSink::instance().record(std::string(impl) + "-pooled", "90-0-10",
                                threads, pooled);
    JsonSink::instance().record(std::string(impl) + "-malloc", "90-0-10",
                                threads, malloc_);
    const double queries =
        static_cast<double>(pooled.ops) * cfg.rq_pct / 100.0;
    std::printf("%8d %12.3f %12.3f %8.2fx %16.6f %16.6f %14.1f\n", threads,
                pooled.mops, malloc_.mops,
                malloc_.mops > 0 ? pooled.mops / malloc_.mops : 0.0,
                pooled.allocs_per_op, malloc_.allocs_per_op,
                queries > 0 ? pooled.limbo_checked / queries : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--duration")) base.duration_ms = 120;
  json_init(args, "ablation_entry_path", base);
  print_header("ablation: RQ entry path", base);
  std::vector<long> ranges{1000, 10000, 50000};
  if (args.has("--keyrange")) ranges = {base.key_range};
  run_family<BundledSkipList<KeyT, ValT>>("skip list", base, ranges);
  // The list's entry walk is O(n) either way; the ablation isolates the
  // bundle-dereference cost per hop rather than the hop count.
  run_family<BundledList<KeyT, ValT>>("lazy list", base,
                                      {500, 2000, 10000});
  std::printf("\nshape-check: the skip list gap should grow sharply with "
              "keyrange (the from-start path forfeits O(log n) index "
              "routing: expect 10-200x). For the list both paths walk the "
              "same O(n) hops from the head; only the per-hop bundle "
              "dereference differs, so expect a modest gap that can vanish "
              "in noise at small key ranges.\n");

  // ---- entry-allocation axis ----
  Config alloc_cfg = base;
  if (!args.has("--threads")) alloc_cfg.thread_counts = {1, 2, 4, 8};
  if (!args.has("--keyrange")) alloc_cfg.key_range = 10000;
  run_alloc_family<BundledSkipList<KeyT, ValT>>(
      "skip list", "Bundle-skiplist", alloc_cfg);
  run_alloc_family<BundledList<KeyT, ValT>>("lazy list", "Bundle-list",
                                            alloc_cfg);
  std::printf("\nshape-check: pooled should win by more as threads grow, "
              "with pooled allocs/op near zero once warm and malloc "
              "allocs/op near the entries-per-update rate.\n");

  // ---- competitor node-allocation axis (EBR-RQ family) ----
  run_ebrrq_alloc_family<EbrRqListSet>("EBR-RQ lazy list", "EBR-RQ-list",
                                       alloc_cfg);
  run_ebrrq_alloc_family<EbrRqSkipListSet>("EBR-RQ skip list",
                                           "EBR-RQ-skiplist", alloc_cfg);
  std::printf("\nshape-check: same shape as the bundle axis — the EBR-RQ "
              "update path paid one node malloc per insert at the seed; "
              "pooled allocs/op should collapse toward zero once the limbo "
              "prune -> EBR -> owner-inbox pipeline is warm. limbo/query "
              "is the paper's limbo-scan overhead and should be unaffected "
              "by the allocation mode.\n");
  JsonSink::instance().flush();
  return 0;
}
