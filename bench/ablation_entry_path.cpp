// Ablation: the range-query entry-path optimization (DESIGN.md §4).
//
// Section 4 of the paper notes that minimality "would also hold for the
// traversal phase if we would have used bundles from the beginning of the
// list. However, ... for performance reasons we decide to avoid using
// bundles to reach the first node of the range"; Section 5 likewise keeps
// the skip list's index layers bundle-free and uses them only to route to
// the range. This bench quantifies both decisions by pitting the shipped
// range_query() (optimistic entry) against range_query_from_start() (all-
// bundle entry) on the same structures under a 50-0-50 workload.
//
// Expected shape: the optimistic entry wins by a factor that grows with key
// range (entry distance); the gap is larger for the skip list, whose index
// layers turn the entry walk into O(log n).

#include <atomic>
#include <barrier>
#include <memory>
#include <thread>

#include "harness.h"

namespace {

using namespace bref;
using namespace bref::bench;

/// Like run_mixed_trial, but range queries go through the selected entry
/// path on the concrete bundled type.
template <typename DS>
double measure_entry_path(int threads, const Config& cfg, bool from_start) {
  double total = 0;
  for (int run = 0; run < cfg.runs; ++run) {
    auto ds = std::make_unique<DS>();
    prefill(*ds, cfg.key_range);
    std::vector<CachePadded<uint64_t>> op_counts(threads);
    std::atomic<bool> stop{false};
    std::barrier start_barrier(threads + 1);
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        // Session for the uniform surface; the from-start entry path is an
        // ablation-only hook, reached through the underlying structure.
        TypedSession<DS> s(*ds, t);
        Xoshiro256 rng(cfg.seed * 977 + t);
        std::vector<std::pair<KeyT, ValT>> rq_out;
        rq_out.reserve(cfg.rq_size + 16);
        uint64_t ops = 0;
        start_barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t dice = rng.next_range(100);
          const KeyT k = 1 + static_cast<KeyT>(rng.next_range(cfg.key_range));
          if (dice < static_cast<uint64_t>(cfg.u_pct)) {
            if (rng.next_range(2) == 0)
              s.insert(k, k);
            else
              s.remove(k);
          } else if (from_start) {
            s.set().range_query_from_start(s.tid(), k, k + cfg.rq_size - 1,
                                           rq_out);
          } else {
            s.set().range_query(s.tid(), k, k + cfg.rq_size - 1, rq_out);
          }
          ++ops;
        }
        *op_counts[t] = ops;
      });
    }
    start_barrier.arrive_and_wait();
    const auto t0 = now();
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : ts) th.join();
    uint64_t ops = 0;
    for (auto& c : op_counts) ops += *c;
    total += static_cast<double>(ops) / elapsed_s(t0) / 1e6;
  }
  return total / cfg.runs;
}

template <typename DS>
void run_family(const char* tag, const Config& base,
                const std::vector<long>& key_ranges) {
  std::printf("\n-- %s: optimistic entry vs all-bundle entry (50-0-50, "
              "Mops/s) --\n", tag);
  std::printf("%10s %8s %12s %12s %10s\n", "keyrange", "threads", "optimistic",
              "from-start", "speedup");
  for (long kr : key_ranges) {
    Config cfg = base;
    cfg.key_range = kr;
    cfg.u_pct = 50;
    cfg.c_pct = 0;
    cfg.rq_pct = 50;
    for (int threads : cfg.thread_counts) {
      const double opt = measure_entry_path<DS>(threads, cfg, false);
      const double fs = measure_entry_path<DS>(threads, cfg, true);
      std::printf("%10ld %8d %12.3f %12.3f %9.2fx\n", kr, threads, opt, fs,
                  fs > 0 ? opt / fs : 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  Config base = config_from_args(args);
  if (!args.has("--duration")) base.duration_ms = 120;
  print_header("ablation: RQ entry path", base);
  std::vector<long> ranges{1000, 10000, 50000};
  if (args.has("--keyrange")) ranges = {base.key_range};
  run_family<BundledSkipList<KeyT, ValT>>("skip list", base, ranges);
  // The list's entry walk is O(n) either way; the ablation isolates the
  // bundle-dereference cost per hop rather than the hop count.
  run_family<BundledList<KeyT, ValT>>("lazy list", base,
                                      {500, 2000, 10000});
  std::printf("\nshape-check: the skip list gap should grow sharply with "
              "keyrange (the from-start path forfeits O(log n) index "
              "routing: expect 10-200x). For the list both paths walk the "
              "same O(n) hops from the head; only the per-hop bundle "
              "dereference differs, so expect a modest gap that can vanish "
              "in noise at small key ranges.\n");
  return 0;
}
