// Figure 2 (a-e): skip-list-family throughput across workload mixes, with
// the competitor set derived from the ImplRegistry (every skip-list
// builtin plus self-structured techniques such as LFCA).
// Paper config: key range 100k, prefill 50%, RQ length 50, threads up to
// 192. Quick defaults here: key range 20k, threads {1,2,4}; pass
// --keyrange 100000 --threads 1,48,96,144,192 --duration 3000 --runs 3 to
// match the paper.

#include "fig2_common.h"

int main(int argc, char** argv) {
  return bref::bench::run_fig2("skiplist", "SL", argc, argv);
}
