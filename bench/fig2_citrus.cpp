// Figure 2 (f-j): Citrus-tree-family throughput across workload mixes,
// with the competitor set derived from the ImplRegistry.
// See fig2_skiplist.cpp for flags reproducing the paper's configuration.

#include "fig2_common.h"

int main(int argc, char** argv) {
  return bref::bench::run_fig2("citrus", "CT", argc, argv);
}
