// Figure 2 (f-j): Citrus-tree throughput across workload mixes.
// See fig2_skiplist.cpp for flags reproducing the paper's configuration.

#include "fig2_common.h"

int main(int argc, char** argv) {
  using namespace bref;
  return bench::run_fig2<BundleCitrusSet, UnsafeCitrusSet, EbrRqCitrusSet,
                         EbrRqLfCitrusSet, RluCitrusSet>("CT", argc, argv);
}
